package xymon

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"xymon/internal/faults"
	"xymon/internal/stream"
)

// The kill-and-recover harness. TestCrashRecovery re-execs this test
// binary as a child running TestCrashChild, which drives the full
// pipeline with a faults.ModeCrash rule armed at one durability point —
// the process genuinely dies there with os.Exit(2), mid-append or
// mid-checkpoint, locks held and buffers unflushed. The parent then
// recovers a fresh System from the surviving disk state and asserts the
// durability invariants:
//
//   - every subscription the child saw acknowledged is still registered
//   - every accepted notification is delivered at least once (a crash
//     between sink accept and the done record may deliver twice — that
//     duplicate is the contract, a loss is a bug)
//   - a periodic continuous query neither re-fires at an unadvanced
//     clock nor skips its next due evaluation
//
// The child writes two fsynced ledgers the WAL never sees: acked.log
// records what the child observed completing (the ground truth of what
// recovery owes), delivered.log records what the sink accepted.

const (
	crashChildEnv = "XYMON_CRASH_CHILD"
	crashDirEnv   = "XYMON_CRASH_DIR"
	crashPointEnv = "XYMON_CRASH_POINT"
	crashMatchEnv = "XYMON_CRASH_MATCH"
	crashSkipEnv  = "XYMON_CRASH_SKIP"
)

var crashT0 = time.Date(2001, 5, 21, 0, 0, 0, 0, time.UTC)

const crashWatchSub = `subscription Watch
monitoring
select <UpdatedPage url=URL/>
where URL extends "http://crash.example/" and modified self
report when immediate`

const crashPulseSub = `subscription Pulse
continuous WeeklyPulse
try weekly
report when immediate`

// ledger is an fsynced append-only line file: what reached it before a
// crash is exactly what a reader sees after (module a torn final line,
// which readLedger drops).
type ledger struct{ f *os.File }

func openLedger(path string) (*ledger, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &ledger{f: f}, nil
}

func (l *ledger) add(entry string) error {
	if _, err := l.f.WriteString(entry + "\n"); err != nil {
		return err
	}
	return l.f.Sync()
}

// Deliver makes the ledger a delivery sink: one line per accepted report.
func (l *ledger) Deliver(rep *Report) error {
	xml := ""
	if rep.Doc != nil {
		xml = strings.ReplaceAll(rep.Doc.XML(), "\n", " ")
	}
	return l.add("deliver " + rep.Subscription + " " + xml)
}

func (l *ledger) Close() error { return l.f.Close() }

// readLedger returns the complete lines of a ledger; a final line without
// its newline is the crash's torn write and is dropped.
func readLedger(path string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	lines := strings.Split(string(data), "\n")
	return lines[:len(lines)-1]
}

// crashScenario kills the child at one durability point.
type crashScenario struct {
	name  string
	point faults.Point
	match string // rule key filter: WAL log name, consumer, or subscription
	skip  int    // let the first skip matching operations pass
	// tornTail names a WAL log ("reporter", "stream") whose active
	// segment additionally gets a partial binary frame appended before
	// recovery — the residue of a write the kernel cut mid-frame.
	tornTail string
}

var crashScenarios = []crashScenario{
	{name: "subs-append", point: faults.PointWALAppend, match: "subs"},
	{name: "subs-append-done", point: faults.PointWALAppendDone, match: "subs"},
	{name: "subs-second-append", point: faults.PointWALAppend, match: "subs", skip: 1},
	{name: "reporter-first-append", point: faults.PointWALAppend, match: "reporter"},
	{name: "reporter-mid-append", point: faults.PointWALAppend, match: "reporter", skip: 5},
	{name: "reporter-append-done", point: faults.PointWALAppendDone, match: "reporter", skip: 3, tornTail: "reporter"},
	{name: "trigger-mark-append", point: faults.PointWALAppend, match: "trigger"},
	{name: "checkpoint-temp", point: faults.PointWALCheckpointTemp},
	{name: "checkpoint-install", point: faults.PointWALCheckpointInstall},
	{name: "checkpoint-compact", point: faults.PointWALCheckpointCompact},
	{name: "checkpoint-reporter-install", point: faults.PointWALCheckpointInstall, match: "reporter"},
	{name: "delivery", point: faults.PointDelivery, skip: 2},
	{name: "delivery-ack", point: faults.PointDeliveryAck, skip: 1, tornTail: "reporter"},
	// Change-stream crash points: the writer side dies mid-append (no
	// phantom batch may survive), the consumer side dies between reading
	// a batch and committing its cursor (the batch must replay), and the
	// cursor install itself is torn (recovery resumes from the previous
	// durable offset — behind is replay, ahead would be a skip).
	{name: "stream-append", point: faults.PointWALAppend, match: "stream"},
	{name: "stream-append-done", point: faults.PointWALAppendDone, match: "stream", skip: 3, tornTail: "stream"},
	{name: "stream-publish", point: faults.PointStreamAppend, skip: 2},
	{name: "stream-consumer-read", point: faults.PointStreamRead, match: "watcher", skip: 2},
	{name: "cursor-commit", point: faults.PointCursorCommit, match: "watcher", skip: 1},
	{name: "cursor-install", point: faults.PointCursorInstall, match: "watcher", skip: 1},
}

// TestCrashChild is the harness's child body; standalone it only skips.
func TestCrashChild(t *testing.T) {
	if os.Getenv(crashChildEnv) != "1" {
		t.Skip("crash-harness child; driven by TestCrashRecovery")
	}
	dir := os.Getenv(crashDirEnv)
	skip, _ := strconv.Atoi(os.Getenv(crashSkipEnv))
	in := faults.New(1)
	in.Enable(faults.Rule{
		Point: faults.Point(os.Getenv(crashPointEnv)),
		Mode:  faults.ModeCrash,
		Match: os.Getenv(crashMatchEnv),
		Skip:  skip,
	})

	acked, err := openLedger(filepath.Join(dir, "acked.log"))
	if err != nil {
		t.Fatalf("acked ledger: %v", err)
	}
	delivered, err := openLedger(filepath.Join(dir, "delivered.log"))
	if err != nil {
		t.Fatalf("delivered ledger: %v", err)
	}
	clk := &testClock{t: crashT0}
	sys, err := New(Options{
		Clock:      clk.now,
		Delivery:   faults.WrapDelivery(delivered, in),
		DurableDir: filepath.Join(dir, "wal"),
		Faults:     in,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	mustAck := func(entry string) {
		if err := acked.add(entry); err != nil {
			t.Fatalf("ack %q: %v", entry, err)
		}
	}
	if _, err := sys.Subscribe(crashWatchSub); err != nil {
		t.Fatalf("Subscribe(Watch): %v", err)
	}
	mustAck("sub:Watch")
	if _, err := sys.Subscribe(crashPulseSub); err != nil {
		t.Fatalf("Subscribe(Pulse): %v", err)
	}
	mustAck("sub:Pulse")

	// First Tick evaluates the never-run weekly query; its immediate
	// report reaches the sink inside the call.
	sys.Tick()
	mustAck("cq:ran")

	for i := 0; i < 8; i++ {
		url := fmt.Sprintf("http://crash.example/p%d.xml", i)
		if _, err := sys.PushXML(url, "", "", "<page>v1</page>"); err != nil {
			t.Fatalf("push %s v1: %v", url, err)
		}
		n, err := sys.PushXML(url, "", "", "<page>v2</page>")
		if err != nil {
			t.Fatalf("push %s v2: %v", url, err)
		}
		if n > 0 {
			mustAck("push:" + url)
		}
		if i == 3 {
			if err := sys.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
			mustAck("checkpoint")
		}
	}

	// Consumer phase: drain the change-stream the way an external pull
	// consumer would — bounded polls, cursor commit after each batch —
	// with the injector's rules live at the stream/cursor fault points.
	// consumed: lines record every offset the child observed; cursor:
	// lines record every durable commit it saw acknowledged.
	streamHook := func(op, key string) error { return in.Check(faults.Point(op), key) }
	rd, err := stream.OpenReader(filepath.Join(dir, "wal", "stream"), "watcher",
		stream.ReaderOptions{Hook: streamHook, MaxFetch: 2})
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	for {
		recs, err := rd.Poll(2)
		if err != nil {
			t.Fatalf("Poll: %v", err)
		}
		if len(recs) == 0 {
			break
		}
		for _, rec := range recs {
			mustAck(fmt.Sprintf("consumed:%d:%s:%s",
				rec.Offset, rec.Subscription, strings.ReplaceAll(rec.XML, "\n", " ")))
		}
		if err := rd.Commit(); err != nil {
			t.Fatalf("cursor commit: %v", err)
		}
		mustAck(fmt.Sprintf("cursor:%d", rd.Next()))
	}
	sys.Close()
	// Reaching here means the armed crash point never fired: exit 0 and
	// let the parent flag the dead scenario.
}

// TestCrashRecovery sweeps the crash matrix: one child execution per
// durability point, then an in-process recovery asserting the
// invariants against the child's ledgers.
func TestCrashRecovery(t *testing.T) {
	if os.Getenv(crashChildEnv) == "1" {
		t.Skip("crash child must not recurse")
	}
	if testing.Short() {
		t.Skip("re-exec harness skipped in -short")
	}
	for _, sc := range crashScenarios {
		t.Run(sc.name, func(t *testing.T) {
			dir := t.TempDir()
			runCrashChild(t, dir, sc)
			if sc.tornTail != "" {
				tearTail(t, dir, sc.tornTail)
			}
			verifyCrashRecovery(t, dir)
		})
	}
}

// runCrashChild re-execs the test binary and requires it to die at the
// scenario's crash point (exit code 2 — the injector's os.Exit).
func runCrashChild(t *testing.T, dir string, sc crashScenario) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashChild$")
	cmd.Env = append(os.Environ(),
		crashChildEnv+"=1",
		crashDirEnv+"="+dir,
		crashPointEnv+"="+string(sc.point),
		crashMatchEnv+"="+sc.match,
		crashSkipEnv+"="+strconv.Itoa(sc.skip),
	)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("child exited cleanly: crash point %s (match %q, skip %d) never fired\n%s",
			sc.point, sc.match, sc.skip, out)
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 2 {
		t.Fatalf("child exit = %v, want the injector's os.Exit(2)\n%s", err, out)
	}
}

// tearTail appends three bytes of a frame header to the named log's
// active segment: the torn write of a crash the WAL must truncate away
// on recovery.
func tearTail(t *testing.T, dir, log string) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal", log, "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no %s segments to tear (err=%v)", log, err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("tearing tail: %v", err)
	}
	if _, err := f.Write([]byte{0x5a, 0x13, 0x9a}); err != nil {
		t.Fatalf("tearing tail: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("tearing tail: %v", err)
	}
}

// verifyCrashRecovery recovers from the child's disk state and checks
// the durability invariants against its ledgers.
func verifyCrashRecovery(t *testing.T, dir string) {
	t.Helper()
	acked := readLedger(filepath.Join(dir, "acked.log"))
	delivered, err := openLedger(filepath.Join(dir, "delivered.log"))
	if err != nil {
		t.Fatalf("delivered ledger: %v", err)
	}
	defer delivered.Close()
	clk := &testClock{t: crashT0}
	sys, err := New(Options{
		Clock:      clk.now,
		Delivery:   delivered,
		DurableDir: filepath.Join(dir, "wal"),
	})
	if err != nil {
		t.Fatalf("recovery after crash failed: %v", err)
	}
	defer sys.Close()

	// Invariant: the subscription base. Everything the child saw
	// acknowledged must be registered (the converse — a subscription
	// durably journaled whose ack was lost in the crash — is allowed).
	subs := make(map[string]bool)
	for _, name := range sys.Manager.Subscriptions() {
		subs[name] = true
	}
	for _, a := range acked {
		if name, ok := strings.CutPrefix(a, "sub:"); ok && !subs[name] {
			t.Errorf("acknowledged subscription %q lost across the crash", name)
		}
	}

	// Invariant: the weekly query's schedule. At the crash-time clock it
	// evaluates at most once across repeated Ticks (zero if its mark was
	// durable, one if the crash beat the mark's append — at-least-once,
	// never a schedule reset that double-fires).
	sys.Tick()
	sys.Tick()
	atT0 := sys.Trigger.Evaluations()
	if atT0 > 1 {
		t.Errorf("weekly query evaluated %d times at the unadvanced clock", atT0)
	}
	// And once its period elapses it is due exactly once more — the
	// persisted mark must not push the schedule forward either.
	clk.advance(8 * 24 * time.Hour)
	sys.Tick()
	if subs["Pulse"] {
		if got := sys.Trigger.Evaluations(); got != atT0+1 {
			t.Errorf("due weekly query evaluated %d times after its period, want %d", got, atT0+1)
		}
		sys.Tick()
		if got := sys.Trigger.Evaluations(); got != atT0+1 {
			t.Errorf("weekly query re-fired immediately after evaluating: %d", got)
		}
	}
	// One more interval drains any retry backoff from redeliveries.
	clk.advance(time.Hour)
	sys.Tick()

	// Invariant: at-least-once delivery. Every notification the child saw
	// accepted — and the continuous query's report, if it ran — appears in
	// the delivered ledger, written either before the crash or by the
	// recovery above. Duplicates are legitimate; absences are losses.
	all := strings.Join(readLedger(filepath.Join(dir, "delivered.log")), "\n")
	for _, a := range acked {
		if url, ok := strings.CutPrefix(a, "push:"); ok && !strings.Contains(all, url) {
			t.Errorf("accepted notification for %s never delivered", url)
		}
		if a == "cq:ran" && !strings.Contains(all, "WeeklyPulse") {
			t.Errorf("continuous query report lost across the crash")
		}
	}
	if p := sys.Reporter.RetryPending(); p != 0 {
		t.Errorf("%d reports still stuck in the retry queue after recovery", p)
	}

	verifyStreamRecovery(t, dir, sys, acked)
}

// verifyStreamRecovery checks the change-stream's half of the
// at-least-once contract after a crash: the consumer's recovered cursor
// never skips past what it consumed (behind means replay, which is the
// contract; ahead would lose records), a replay from that cursor is
// offset-contiguous to the head with no phantom records, and every
// notification the child saw accepted is in the stream — consumed
// before the crash or replayable now.
func verifyStreamRecovery(t *testing.T, dir string, sys *System, acked []string) {
	t.Helper()
	consumed := make(map[uint64]string)
	var maxConsumed, lastCursor uint64
	for _, a := range acked {
		if rest, ok := strings.CutPrefix(a, "consumed:"); ok {
			parts := strings.SplitN(rest, ":", 3)
			off, err := strconv.ParseUint(parts[0], 10, 64)
			if len(parts) != 3 || err != nil {
				t.Fatalf("malformed consumed ledger line %q", a)
			}
			consumed[off] = parts[2]
			if off >= maxConsumed {
				maxConsumed = off
			}
		}
		if rest, ok := strings.CutPrefix(a, "cursor:"); ok {
			n, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				t.Fatalf("malformed cursor ledger line %q", a)
			}
			if n > lastCursor {
				lastCursor = n
			}
		}
	}

	rd, err := stream.OpenReader(filepath.Join(dir, "wal", "stream"), "watcher", stream.ReaderOptions{})
	if err != nil {
		t.Fatalf("reopening consumer after crash: %v", err)
	}
	committed := rd.Committed()
	if committed < lastCursor {
		t.Errorf("recovered cursor %d behind the last synced commit %d", committed, lastCursor)
	}
	if len(consumed) > 0 && committed > maxConsumed+1 {
		t.Errorf("recovered cursor %d skipped past the last consumed offset %d", committed, maxConsumed)
	}
	if len(consumed) == 0 && committed != 0 {
		t.Errorf("cursor committed at %d but the child consumed nothing", committed)
	}

	// Replay from the recovered cursor to the head. Offsets must be
	// contiguous — retention never runs past a live cursor in these
	// scenarios, so any gap is a silent skip, not a truncation — and
	// every record must be one the pipeline actually published.
	next := committed
	replayed := make(map[uint64]string)
	for {
		recs, err := rd.Poll(3)
		if err != nil {
			t.Fatalf("replay from recovered cursor %d: %v", committed, err)
		}
		if len(recs) == 0 {
			break
		}
		for _, rec := range recs {
			if rec.Offset != next {
				t.Fatalf("replay jumped from offset %d to %d", next, rec.Offset)
			}
			next = rec.Offset + 1
			if rec.Subscription != "Watch" && rec.Subscription != "Pulse" {
				t.Errorf("phantom stream record %d for subscription %q", rec.Offset, rec.Subscription)
			}
			replayed[rec.Offset] = rec.XML
		}
	}
	if head := sys.Stream.Next(); next != head {
		t.Errorf("replay stopped at offset %d, stream head is %d", next, head)
	}

	var seen strings.Builder
	for _, xml := range consumed {
		seen.WriteString(xml)
		seen.WriteByte('\n')
	}
	for _, xml := range replayed {
		seen.WriteString(xml)
		seen.WriteByte('\n')
	}
	for _, a := range acked {
		if url, ok := strings.CutPrefix(a, "push:"); ok && !strings.Contains(seen.String(), url) {
			t.Errorf("accepted notification for %s missing from the change-stream", url)
		}
	}
}
