// Package xymon is a from-scratch reproduction of the subscription system
// of "Monitoring XML Data on the Web" (Nguyen, Abiteboul, Cobéna, Preda;
// SIGMOD 2001): the change-monitoring half of the Xyleme XML web
// warehouse.
//
// A System bundles the paper's architecture (Figure 3): alerters detect
// atomic events on every fetched document, the Monitoring Query Processor
// (the paper's "Atomic Event Sets" hash-tree) matches them against
// millions of registered conjunctions, the Trigger Engine evaluates
// continuous queries, and the Reporter buffers notifications and emits XML
// reports according to each subscription's report conditions.
//
// Quick start:
//
//	sys, _ := xymon.New(xymon.Options{})
//	sys.Subscribe(`subscription Watch
//	    monitoring
//	    select <UpdatedPage url=URL/>
//	    where URL extends "http://inria.fr/Xy/" and modified self
//	    report when immediate`)
//	sys.PushXML("http://inria.fr/Xy/index.xml", "", "", "<page>v1</page>")
//	sys.PushXML("http://inria.fr/Xy/index.xml", "", "", "<page>v2</page>")
//	// the second push raises UpdatedPage and delivers a report
package xymon

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"time"

	"xymon/internal/alerter"
	"xymon/internal/core"
	"xymon/internal/crawler"
	"xymon/internal/faults"
	"xymon/internal/manager"
	"xymon/internal/reporter"
	"xymon/internal/semantic"
	"xymon/internal/stream"
	"xymon/internal/sublang"
	"xymon/internal/trigger"
	"xymon/internal/wal"
	"xymon/internal/warehouse"
	"xymon/internal/webgen"
	"xymon/internal/xmldom"
)

// Re-exported types of the public surface.
type (
	// Report is a generated subscription report.
	Report = reporter.Report
	// Notification is one entry of a notification stream.
	Notification = reporter.Notification
	// Delivery receives finished reports.
	Delivery = reporter.Delivery
	// DeliveryFunc adapts a function to Delivery.
	DeliveryFunc = reporter.DeliveryFunc
	// Subscription is a parsed subscription.
	Subscription = sublang.Subscription
	// Site is a synthetic web site usable with AddSite.
	Site = webgen.Site
	// SiteSpec configures a synthetic site.
	SiteSpec = webgen.SiteSpec
	// PerturbKind selects a SiteSpec's refetch perturbation.
	PerturbKind = webgen.PerturbKind
)

// Re-exported SiteSpec perturbation kinds.
const (
	PerturbWhitespace = webgen.PerturbWhitespace
	PerturbAttrOrder  = webgen.PerturbAttrOrder
)

// NewSite builds a synthetic site for simulated crawling.
func NewSite(spec SiteSpec) *Site { return webgen.NewSite(spec) }

// Options configures a System. The zero value is a fully in-memory system
// on the real clock that discards reports.
type Options struct {
	// Clock substitutes the time source (virtual time in tests and
	// simulations).
	Clock func() time.Time
	// Delivery receives reports; nil discards them.
	Delivery Delivery
	// JournalPath persists the subscription base to a JSON-lines file for
	// recovery; empty keeps it in memory only. DurableDir supersedes it.
	JournalPath string
	// DurableDir enables the crash-safe durability layer: write-ahead
	// logs under this directory persist the subscription base (subs/),
	// the Reporter's notification buffers and undelivered reports
	// (reporter/), and the Trigger Engine's evaluation marks (trigger/),
	// plus the notification change-stream (stream/) every delivered
	// report batch is published to for pull consumers with durable
	// cursors. New recovers them all before returning, Checkpoint
	// compacts them (applying stream retention), and Close releases
	// them.
	DurableDir string
	// StreamMaxBehind is the change-stream's retention floor: at most
	// this many records are kept behind the head for lagging consumers;
	// past it a consumer is truncated (stream.ErrTruncated) and must
	// re-sync. 0 keeps everything any live cursor still needs. Only
	// meaningful with DurableDir.
	StreamMaxBehind uint64
	// Faults threads a fault injector into the durability layer: rules
	// armed at the faults.PointWAL* points fire inside WAL appends and
	// checkpoint installation (the crash harness's kill switch). Nil
	// injects nothing.
	Faults *faults.Injector
	// TriePrefixes selects the trie structure for `URL extends` patterns
	// instead of the default hash structure (the Section 6.2 ablation).
	TriePrefixes bool
	// Domains seeds the semantic classifier (Xyleme's semantic module):
	// domain name -> typical element tags. Documents pushed or crawled
	// without an explicit domain are classified automatically.
	Domains map[string][]string
	// DataDir, when set, loads a warehouse snapshot from the directory at
	// startup (if one exists) and enables SaveWarehouse.
	DataDir string
	// MaxCost rejects subscriptions whose a priori cost estimate exceeds
	// the budget, and InhibitRate suspends subscriptions that flood the
	// notification stream — the resource controls of Section 5.4. Zero
	// disables each.
	MaxCost     float64
	InhibitRate float64
	// AlwaysParse disables the crawler's streaming ingest gate, so every
	// fetched XML page is parsed and committed even when it is untracked
	// and cannot raise any event. The default (gate on) runs the
	// pre-filter over the serialized bytes and skips the DOM for pages
	// nobody could possibly be notified about; benchmarks use this switch
	// to measure the gate's effect.
	AlwaysParse bool
	// AlwaysDiff disables the warehouse's unchanged fast paths (the raw
	// byte signature and the streaming structural hash), so every
	// refetched XML page pays the full parse and canonical comparison.
	// Benchmarks use this switch as the baseline the tiered change
	// detection is measured against.
	AlwaysDiff bool
}

// System is the assembled subscription system.
type System struct {
	Store      *warehouse.Store
	Manager    *manager.Manager
	Reporter   *reporter.Reporter
	Trigger    *trigger.Engine
	Crawler    *crawler.Crawler
	Matcher    *core.Matcher
	Pipeline   *alerter.Pipeline
	Classifier *semantic.Classifier
	// Stream is the durable notification change-stream (nil without
	// Options.DurableDir): open a stream.Reader on its directory to
	// consume reports at your own pace with a durable cursor.
	Stream  *stream.Log
	clock   func() time.Time
	dataDir string
	// closers releases the durability layer (journal + WAL logs).
	closers []io.Closer
}

// New assembles a System.
func New(opts Options) (*System, error) {
	clock := opts.Clock
	if clock == nil {
		clock = time.Now
	}
	s := &System{clock: clock}
	s.Classifier = semantic.NewClassifier()
	for name, tags := range opts.Domains {
		s.Classifier.AddDomain(name, tags...)
	}
	storeOpts := []warehouse.Option{warehouse.WithClock(clock)}
	if opts.AlwaysDiff {
		storeOpts = append(storeOpts, warehouse.WithAlwaysDiff())
	}
	s.Store = warehouse.NewStore(storeOpts...)

	// The durability layer: one WAL per stateful module, all consulting
	// the same fault injector (the hook reports the log's durability
	// points under the wal.Op names, which double as faults.Point names).
	fail := func(err error) (*System, error) {
		_ = s.Close() // best-effort release; the construction error wins
		return nil, err
	}
	var hook wal.Hook
	if opts.Faults != nil {
		in := opts.Faults
		hook = func(op, key string) error { return in.Check(faults.Point(op), key) }
	}
	var walRep, walTrig *wal.Log
	var journal manager.Journal
	if opts.DurableDir != "" {
		walSubs, err := wal.Open(filepath.Join(opts.DurableDir, "subs"), wal.Options{Hook: hook})
		if err != nil {
			return fail(err)
		}
		wj := manager.NewWALJournal(walSubs)
		journal = wj
		s.closers = append(s.closers, wj)
		if walRep, err = wal.Open(filepath.Join(opts.DurableDir, "reporter"), wal.Options{Hook: hook}); err != nil {
			return fail(err)
		}
		s.closers = append(s.closers, walRep)
		if walTrig, err = wal.Open(filepath.Join(opts.DurableDir, "trigger"), wal.Options{Hook: hook}); err != nil {
			return fail(err)
		}
		s.closers = append(s.closers, walTrig)
		if s.Stream, err = stream.Open(filepath.Join(opts.DurableDir, "stream"), stream.Options{
			Hook:      hook,
			MaxBehind: opts.StreamMaxBehind,
		}); err != nil {
			return fail(err)
		}
		s.closers = append(s.closers, s.Stream)
	} else if opts.JournalPath != "" {
		fj, err := manager.NewFileJournal(opts.JournalPath)
		if err != nil {
			return nil, err
		}
		journal = fj
		s.closers = append(s.closers, fj)
	}

	repOpts := []reporter.Option{reporter.WithClock(clock)}
	if walRep != nil {
		repOpts = append(repOpts, reporter.WithWAL(walRep))
	}
	if s.Stream != nil {
		repOpts = append(repOpts, reporter.WithStream(s.Stream))
	}
	s.Reporter = reporter.New(opts.Delivery, repOpts...)
	trigOpts := []trigger.Option{trigger.WithClock(clock)}
	if walTrig != nil {
		trigOpts = append(trigOpts, trigger.WithWAL(walTrig))
	}
	s.Trigger = trigger.New(s.Store.AllRoots, func(r trigger.Result) {
		s.Reporter.Notify(reporter.Notification{
			Subscription: r.Subscription, Label: r.Query, Element: r.Element, Time: r.Time,
		})
	}, trigOpts...)
	var prefixes alerter.PrefixIndex
	if opts.TriePrefixes {
		prefixes = alerter.NewTriePrefixIndex()
	}
	s.Pipeline = alerter.NewPipeline(prefixes)
	s.Matcher = core.NewMatcher()
	s.Manager = manager.New(manager.Config{
		Matcher:     s.Matcher,
		Pipeline:    s.Pipeline,
		Reporter:    s.Reporter,
		Trigger:     s.Trigger,
		Clock:       clock,
		Journal:     journal,
		MaxCost:     opts.MaxCost,
		InhibitRate: opts.InhibitRate,
	})
	if journal != nil {
		// Recovery order matters: trigger marks first (Register consults
		// them as the subscription base comes back), then the base itself,
		// then the Reporter (its recovery drops the buffers of
		// subscriptions that no longer exist, so registration must be
		// done).
		if err := s.Trigger.Recover(); err != nil {
			return fail(err)
		}
		if err := s.Manager.Recover(journal); err != nil {
			return fail(err)
		}
		if err := s.Reporter.Recover(); err != nil {
			return fail(err)
		}
	}
	s.Crawler = crawler.New(s.Store, func(d *alerter.Doc) { s.Manager.ProcessDoc(d) }, clock)
	if !opts.AlwaysParse {
		// The streaming ingest gate (the zero-copy alerter path): a fetched
		// XML page is parsed only if it is version-tracked, some condition
		// class needs every document (continuous queries, element change
		// conditions, URL-level conditions that could match), or the
		// pre-filter finds an interesting word in the byte stream.
		prefilter := alerter.NewPrefilter(s.Pipeline.XML)
		s.Crawler.Gate = func(url, dtd, domain string, data []byte) bool {
			if s.Store.Tracked(url) || s.Trigger.Len() > 0 {
				return true
			}
			if s.Pipeline.XML.HasChangeConds() {
				return true
			}
			if s.Pipeline.URL.CouldAlert(url, warehouse.Filename(url), dtd, domain) {
				return true
			}
			return prefilter.Match(data)
		}
	}
	if opts.DataDir != "" {
		s.dataDir = opts.DataDir
		if _, err := os.Stat(filepath.Join(opts.DataDir, "manifest.json")); err == nil {
			if err := s.Store.Load(opts.DataDir); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// SaveWarehouse snapshots the warehouse into Options.DataDir (or the given
// directory when DataDir was not set).
func (s *System) SaveWarehouse(dir string) error {
	if dir == "" {
		dir = s.dataDir
	}
	if dir == "" {
		return errors.New("xymon: no data directory configured")
	}
	return s.Store.Save(dir)
}

// Checkpoint compacts the durability layer: each module snapshots its
// state (live subscription base, buffered notifications plus undelivered
// reports, evaluation marks) and truncates the journal records the
// snapshot covers. A no-op without Options.DurableDir.
func (s *System) Checkpoint() error {
	if err := s.Manager.Checkpoint(); err != nil {
		return err
	}
	if err := s.Reporter.Checkpoint(); err != nil {
		return err
	}
	if err := s.Trigger.Checkpoint(); err != nil {
		return err
	}
	if s.Stream != nil {
		// Stream retention: reclaim segments every live cursor has
		// passed, bounded below by StreamMaxBehind.
		if _, err := s.Stream.Retain(); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and releases the durability layer. The System must not
// be used afterwards; its on-disk state recovers on the next New.
func (s *System) Close() error {
	var first error
	for _, c := range s.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.closers = nil
	return first
}

// Subscribe registers a subscription written in the subscription language
// of Section 5 and returns its parsed form.
func (s *System) Subscribe(src string) (*Subscription, error) {
	sub, err := s.Manager.Subscribe(src)
	if err != nil {
		return nil, err
	}
	s.Crawler.ApplyRefreshHints(s.Manager.RefreshHints())
	return sub, nil
}

// Unsubscribe removes a subscription.
func (s *System) Unsubscribe(name string) error {
	return s.Manager.Unsubscribe(name)
}

// PushXML feeds one fetched XML page through the full notification chain
// (warehouse commit, change detection, alerters, matching, reporting) and
// returns the number of notifications produced.
func (s *System) PushXML(url, dtd, domain, content string) (int, error) {
	data := []byte(content)
	if domain == "" {
		// The semantic module classifies unlabelled documents (Figure 1).
		// Classification needs a tree, so an unlabelled push pays a parse
		// up front; labelled pushes go straight to the byte-level commit
		// and its unchanged fast paths.
		doc, err := xmldom.ParseBytes(data)
		if err != nil {
			return 0, err
		}
		domain, _ = s.Classifier.Classify(doc)
	}
	res, err := s.Store.CommitXMLBytes(url, dtd, domain, data)
	if err != nil {
		return 0, err
	}
	return s.Manager.ProcessDoc(&alerter.Doc{
		Meta: res.Meta, Status: res.Status, Doc: res.Doc, Delta: res.Delta,
	}), nil
}

// PushHTML feeds one fetched HTML page through the notification chain.
func (s *System) PushHTML(url string, content []byte) (int, error) {
	res, err := s.Store.CommitHTML(url, content)
	if err != nil {
		return 0, err
	}
	return s.Manager.ProcessDoc(&alerter.Doc{
		Meta: res.Meta, Status: res.Status, Content: content,
	}), nil
}

// AddSite registers a synthetic site with the crawler.
func (s *System) AddSite(site *Site) {
	s.Crawler.AddSite(site)
	s.Crawler.ApplyRefreshHints(s.Manager.RefreshHints())
}

// Crawl fetches every page whose refresh time has come and returns the
// number of pages fetched.
func (s *System) Crawl() int {
	return s.Crawler.Step()
}

// Tick advances the time-based machinery: scheduled continuous queries,
// periodic report conditions, rate-limit windows and archive expiry. Call
// it regularly (per simulated hour or day).
func (s *System) Tick() {
	s.Trigger.Tick()
	s.Reporter.Tick()
}

// Stats aggregates the counters of every module.
type Stats struct {
	Manager   manager.Stats
	Crawler   crawler.Stats
	Matcher   core.Stats
	Warehouse warehouse.Stats
	Pages     int
}

// Stats snapshots the system counters.
func (s *System) Stats() Stats {
	return Stats{
		Manager:   s.Manager.Stats(),
		Crawler:   s.Crawler.Stats(),
		Matcher:   s.Matcher.Stats(),
		Warehouse: s.Store.Stats(),
		Pages:     s.Store.Len(),
	}
}
