package xymon

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestGoldenScenario drives the complete system through a deterministic
// six-week simulation — crawl, elements changing, continuous queries,
// report conditions — and pins the exact counters. Any behavioural drift
// anywhere in the chain (diff, alerters, matcher, reporter) shows up here.
func TestGoldenScenario(t *testing.T) {
	sys, c, reports := newSystem(t, Options{})

	subs := []string{
		`subscription Cameras
monitoring
select <NewCamera url=URL/>
where URL extends "http://golden.example/" and new product contains "camera"
report when notifications.count > 2`,
		`subscription Prices
monitoring
select <PriceMove url=URL/>
where URL extends "http://golden.example/" and updated price
report when weekly`,
		`subscription Stock
continuous delta AllProducts
select p/name from catalog/product p
when weekly
report when immediate`,
	}
	for _, src := range subs {
		if _, err := sys.Subscribe(src); err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
	}

	sys.AddSite(NewSite(SiteSpec{
		BaseURL: "http://golden.example", Pages: 3, Products: 10, Churn: 2,
		Seed: 4242, Domain: "shopping",
	}))

	for day := 0; day < 42; day++ {
		sys.Crawl()
		sys.Tick()
		c.advance(24 * time.Hour)
	}

	st := sys.Stats()
	// Pin the counters. These values are deterministic functions of the
	// seed and the pipeline's semantics.
	if st.Crawler.Fetches != 18 || st.Crawler.New != 3 || st.Crawler.Updated != 15 {
		t.Errorf("crawler stats = %+v", st.Crawler)
	}
	if st.Manager.Subscriptions != 3 || st.Manager.ComplexEvents != 2 {
		t.Errorf("manager stats = %+v", st.Manager)
	}
	bySub := map[string]int{}
	for _, r := range *reports {
		bySub[r.Subscription]++
	}
	if len(*reports) == 0 {
		t.Fatal("no reports in six weeks")
	}
	// The weekly continuous query reports on its first evaluation and then
	// only when the product set changes (delta mode); price-only weeks stay
	// silent. The price monitor reports weekly when it has notifications.
	if bySub["Stock"] == 0 || bySub["Prices"] == 0 {
		t.Errorf("report distribution = %v", bySub)
	}
	// Cross-check a structural invariant rather than just counts: every
	// Prices report contains only PriceMove notifications.
	for _, r := range *reports {
		if r.Subscription != "Prices" {
			continue
		}
		for _, child := range r.Doc.Children {
			if child.Tag != "PriceMove" {
				t.Errorf("Prices report contains %s", child.Tag)
			}
		}
	}
	t.Logf("reports by subscription: %v (total %d), notifications %d",
		bySub, len(*reports), st.Manager.Notifications)
}

// TestConcurrentPushes exercises the full chain from many goroutines
// simultaneously (run with -race): distinct URLs, shared subscription base.
func TestConcurrentPushes(t *testing.T) {
	sys, _, _ := newSystem(t, Options{})
	if _, err := sys.Subscribe(`subscription Load
monitoring
select <Hit url=URL/>
where URL extends "http://load.example/" and modified self
report when notifications.count > 1000000`); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			url := fmt.Sprintf("http://load.example/page%d.xml", g)
			for v := 1; v <= 50; v++ {
				if _, err := sys.PushXML(url, "", "", fmt.Sprintf("<p><v>%d</v></p>", v)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent push: %v", err)
	}
	st := sys.Stats()
	if st.Manager.DocsProcessed != 400 {
		t.Errorf("DocsProcessed = %d, want 400", st.Manager.DocsProcessed)
	}
	// 49 updates per page × 8 pages.
	if st.Manager.Notifications != 392 {
		t.Errorf("Notifications = %d, want 392", st.Manager.Notifications)
	}
}

// TestManySubscriptionsSharedEvents registers a thousand subscriptions
// over fifty shared URL prefixes and checks event deduplication keeps the
// atomic-event space small — the k-concentration the paper's analysis
// rests on.
func TestManySubscriptionsSharedEvents(t *testing.T) {
	sys, _, _ := newSystem(t, Options{})
	for i := 0; i < 1000; i++ {
		src := fmt.Sprintf(`subscription S%d
monitoring
select <H url=URL/>
where URL extends "http://shared%d.example/" and modified self
report when immediate`, i, i%50)
		if _, err := sys.Subscribe(src); err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
	}
	st := sys.Stats()
	if st.Manager.AtomicEvents != 51 { // 50 prefixes + 1 shared "modified self"
		t.Errorf("AtomicEvents = %d, want 51", st.Manager.AtomicEvents)
	}
	if st.Manager.ComplexEvents != 1000 {
		t.Errorf("ComplexEvents = %d", st.Manager.ComplexEvents)
	}
	// One changed page matches exactly the 20 subscriptions on its prefix.
	sys.PushXML("http://shared7.example/x.xml", "", "", "<a><v>1</v></a>")
	n, err := sys.PushXML("http://shared7.example/x.xml", "", "", "<a><v>2</v></a>")
	if err != nil || n != 20 {
		t.Errorf("notifications = %d, want 20 (err %v)", n, err)
	}
}

// TestReportContentEndToEnd pins the exact XML of a report through the
// whole chain, including the report query post-processing.
func TestReportContentEndToEnd(t *testing.T) {
	sys, _, reports := newSystem(t, Options{})
	if _, err := sys.Subscribe(`subscription Exact
monitoring
select <UpdatedPage url=URL/>
where URL extends "http://exact.example/" and modified self
report
select distinct p from Report/UpdatedPage p
when notifications.count > 2`); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	pages := []string{"a.xml", "b.xml", "a.xml"} // a updated twice
	for _, p := range pages {
		url := "http://exact.example/" + p
		sys.PushXML(url, "", "", "<d><v>0</v></d>")
	}
	v := 1
	for len(*reports) == 0 {
		for _, p := range pages {
			url := "http://exact.example/" + p
			sys.PushXML(url, "", "", fmt.Sprintf("<d><v>%d</v></d>", v))
			v++
		}
	}
	got := (*reports)[0].Doc.XML()
	// distinct removed the duplicate UpdatedPage for a.xml.
	if strings.Count(got, "UpdatedPage") != 2 {
		t.Errorf("report = %s", got)
	}
}
