package xymon_test

import (
	"fmt"

	"xymon"
)

// A complete monitoring cycle: subscribe, push two versions of a page,
// receive the report. The first fetch is a discovery (the page is new, so
// `modified self` stays silent); the second raises the UpdatedPage
// notification and the immediate report condition delivers it.
func Example() {
	sys, _ := xymon.New(xymon.Options{
		Delivery: xymon.DeliveryFunc(func(r *xymon.Report) error {
			fmt.Println(r.Doc.XML())
			return nil
		}),
	})
	sys.Subscribe(`subscription Watch
monitoring
select <UpdatedPage url=URL/>
where URL extends "http://inria.fr/Xy/" and modified self
report when immediate`)

	sys.PushXML("http://inria.fr/Xy/index.xml", "", "", "<page><v>1</v></page>")
	sys.PushXML("http://inria.fr/Xy/index.xml", "", "", "<page><v>2</v></page>")
	// Output: <Report><UpdatedPage url="http://inria.fr/Xy/index.xml"/></Report>
}

// Element-level monitoring: a new Member element inside a watched page
// produces one notification per new element, carrying the element itself.
func Example_elementLevel() {
	sys, _ := xymon.New(xymon.Options{
		Delivery: xymon.DeliveryFunc(func(r *xymon.Report) error {
			fmt.Println(r.Doc.XML())
			return nil
		}),
	})
	sys.Subscribe(`subscription Members
monitoring
select X
from self//Member X
where URL = "http://inria.fr/Xy/members.xml" and new X
report when immediate`)

	sys.PushXML("http://inria.fr/Xy/members.xml", "", "",
		"<Team><Member><name>nguyen</name></Member></Team>")
	sys.PushXML("http://inria.fr/Xy/members.xml", "", "",
		"<Team><Member><name>nguyen</name></Member><Member><name>preda</name></Member></Team>")
	// Output:
	// <Report><Member><name>nguyen</name></Member></Report>
	// <Report><Member><name>preda</name></Member></Report>
}
