// Benchmarks regenerating the paper's figures and capacity tables. Each
// benchmark corresponds to one experiment ID of DESIGN.md / EXPERIMENTS.md;
// cmd/xybench prints the same measurements as figure-shaped series.
package xymon

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"xymon/internal/alerter"
	"xymon/internal/baseline"
	"xymon/internal/cluster"
	"xymon/internal/core"
	"xymon/internal/reporter"
	"xymon/internal/sublang"
	"xymon/internal/warehouse"
	"xymon/internal/webgen"
	"xymon/internal/xmldom"
	"xymon/internal/xydiff"
)

// loadMatcher builds a matcher from a workload.
func loadMatcher(b *testing.B, w *webgen.EventWorkload) *core.Matcher {
	b.Helper()
	m := core.NewMatcher()
	if err := w.Load(m.Add); err != nil {
		b.Fatalf("load workload: %v", err)
	}
	return m
}

func matchLoop(b *testing.B, m interface {
	Match(core.EventSet) []core.ComplexID
}, docs []core.EventSet) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(docs[i%len(docs)])
	}
}

// shortScale trims a benchmark's parameter space in -short mode so the CI
// bench smoke (`go test -short -run=NONE -bench=. -benchtime=1x`) still
// executes every benchmark body without paying full-scale workload
// generation.
func shortScale[T any](full []T, short []T) []T {
	if testing.Short() {
		return short
	}
	return full
}

// BenchmarkFig5 reproduces Figure 5: time to process one document as a
// function of p = Card(S), one series per Card(C). The paper reports a
// linear dependence on p and about 1 ms per document at p = 100 with a
// million complex events (2001 hardware).
func BenchmarkFig5(b *testing.B) {
	const (
		cardA = 100000
		m     = 3
		nDocs = 1024
	)
	for _, cardC := range shortScale([]int{10000, 100000, 1000000}, []int{10000}) {
		for _, p := range shortScale([]int{10, 20, 40, 60, 80, 100}, []int{10, 100}) {
			w := webgen.GenEventWorkload(5, cardA, cardC, m, p, nDocs)
			matcher := loadMatcher(b, w)
			b.Run(fmt.Sprintf("C=%d/p=%d", cardC, p), func(b *testing.B) {
				matchLoop(b, matcher, w.Docs)
			})
		}
	}
}

// BenchmarkFig6 reproduces Figure 6: time per document against log k,
// where k (mean complex events per atomic event) is controlled by varying
// Card(C) at fixed Card(A). The paper observes O(p·log k).
func BenchmarkFig6(b *testing.B) {
	const (
		cardA = 100000
		m     = 3
		p     = 20
		nDocs = 1024
	)
	for _, cardC := range shortScale([]int{10000, 33000, 100000, 330000, 1000000}, []int{10000}) {
		w := webgen.GenEventWorkload(6, cardA, cardC, m, p, nDocs)
		matcher := loadMatcher(b, w)
		b.Run(fmt.Sprintf("C=%d/k=%.1f", cardC, w.K()), func(b *testing.B) {
			matchLoop(b, matcher, w.Docs)
		})
	}
}

// BenchmarkMSweep reproduces the Section 4.2 claim that the cost is
// independent of m (the atomic events per complex event) for m in 2..10
// when p >= m.
func BenchmarkMSweep(b *testing.B) {
	const (
		cardA = 100000
		cardC = 100000
		p     = 20
		nDocs = 1024
	)
	for _, m := range shortScale([]int{2, 4, 6, 8, 10}, []int{2}) {
		w := webgen.GenEventWorkload(7, cardA, cardC, m, p, nDocs)
		matcher := loadMatcher(b, w)
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			matchLoop(b, matcher, w.Docs)
		})
	}
}

// BenchmarkThroughput reproduces the capacity claim of Section 4.2: the
// processor sustains "several thousand sets of atomic events per second",
// enough for ~100 crawlers of 50 documents/second each.
func BenchmarkThroughput(b *testing.B) {
	cardC := shortScale([]int{1000000}, []int{10000})[0]
	w := webgen.GenEventWorkload(8, 100000, cardC, 3, 20, 4096)
	matcher := loadMatcher(b, w)
	b.Run(fmt.Sprintf("C=%d/p=20", cardC), func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			matcher.Match(w.Docs[i%len(w.Docs)])
		}
		elapsed := time.Since(start)
		if elapsed > 0 {
			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "docs/s")
		}
	})
}

// BenchmarkBaselines is the Section 4.1 ablation: the Atomic Event Sets
// structure against the naive scan and the counting (inverted index)
// algorithm, at a subscription scale where all three finish.
func BenchmarkBaselines(b *testing.B) {
	const (
		cardA = 10000
		cardC = 10000
		m     = 3
		p     = 20
		nDocs = 1024
	)
	w := webgen.GenEventWorkload(9, cardA, cardC, m, p, nDocs)
	impls := []struct {
		name string
		m    baseline.Matcher
	}{
		{"aes", core.NewMatcher()},
		{"counting", baseline.NewCounting()},
		{"naive", baseline.NewNaive()},
	}
	for _, impl := range impls {
		if err := w.Load(impl.m.Add); err != nil {
			b.Fatalf("load: %v", err)
		}
		b.Run(impl.name, func(b *testing.B) {
			matchLoop(b, impl.m, w.Docs)
		})
	}
}

// BenchmarkPartitioned measures the two distribution directions of
// Section 4.2: splitting subscriptions across blocks.
func BenchmarkPartitioned(b *testing.B) {
	const (
		cardA = 100000
		m     = 3
		p     = 20
	)
	cardC := shortScale([]int{200000}, []int{20000})[0]
	w := webgen.GenEventWorkload(10, cardA, cardC, m, p, 1024)
	for _, blocks := range shortScale([]int{1, 2, 4, 8}, []int{1}) {
		part := core.NewPartitioned(blocks, false)
		if err := w.Load(part.Add); err != nil {
			b.Fatalf("load: %v", err)
		}
		b.Run(fmt.Sprintf("blocks=%d", blocks), func(b *testing.B) {
			matchLoop(b, part, w.Docs)
		})
	}
}

// BenchmarkURLAlerter is the Section 6.2 ablation: hash-table prefix
// lookup against the dictionary (trie) structure the paper measured as
// ~30% faster but too memory-hungry.
func BenchmarkURLAlerter(b *testing.B) {
	const patterns = 100000
	urls := make([]string, 1024)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://site%d.example/path/sub%d/page%d.xml", i%500, i%37, i)
	}
	for _, impl := range []struct {
		name string
		idx  alerter.PrefixIndex
	}{
		{"hash", alerter.NewHashPrefixIndex()},
		{"trie", alerter.NewTriePrefixIndex()},
	} {
		for i := 0; i < patterns; i++ {
			impl.idx.Add(fmt.Sprintf("http://site%d.example/path/sub%d/", i%500, i%37), core.Event(i))
		}
		b.Run(impl.name, func(b *testing.B) {
			b.ReportMetric(float64(impl.idx.MemoryEstimate())/1e6, "MB")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				impl.idx.Lookup(urls[i%len(urls)], func(core.Event) {})
			}
		})
	}
}

// BenchmarkXMLAlerter measures the Section 6.3 postorder word-detection
// algorithm across document sizes and depths (the paper bounds the cost
// by Size × Depth and reports the alerters keep up with the crawl rate).
func BenchmarkXMLAlerter(b *testing.B) {
	xa := alerter.NewXMLAlerter()
	vocab := webgen.Vocabulary()
	for i, w := range vocab {
		xa.Register(core.Event(i+1), sublang.Condition{
			Kind: sublang.CondElement, Tag: fmt.Sprintf("e%d", i%20), Str: w,
		})
	}
	for _, cfg := range []struct{ size, depth int }{
		{100, 5}, {1000, 5}, {1000, 20}, {10000, 5}, {10000, 20},
	} {
		doc := webgen.RandomTree(11, cfg.size, cfg.depth)
		d := &alerter.Doc{
			Meta:   warehouse.Metadata{URL: "http://x/", Type: warehouse.XML},
			Status: warehouse.StatusUnchanged,
			Doc:    doc,
		}
		b.Run(fmt.Sprintf("size=%d/depth=%d", cfg.size, cfg.depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				xa.Detect(d, func(core.Event) {})
			}
		})
	}
}

// BenchmarkXMLDiff measures delta computation between successive catalog
// versions — the change-detection cost the XML alerter depends on.
func BenchmarkXMLDiff(b *testing.B) {
	site := webgen.NewSite(webgen.SiteSpec{Products: 100, Seed: 12})
	url := site.XMLURLs()[0]
	old := site.FetchXML(url, 5)
	new := site.FetchXML(url, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := old.Clone()
		n := new.Clone()
		if _, err := xydiff.Diff(o, n); err != nil {
			b.Fatalf("Diff: %v", err)
		}
	}
}

// diffChain builds the version-pair workloads for BenchmarkDiff: a small
// edit (adjacent versions), a child reorder (rotated catalog), and a
// rewrite (distant versions, most products changed).
func diffChain() (base, small, reorder, rewrite *xmldom.Document) {
	site := webgen.NewSite(webgen.SiteSpec{Products: 100, Seed: 12})
	url := site.XMLURLs()[0]
	base = site.FetchXML(url, 5)
	small = site.FetchXML(url, 6)
	rewrite = site.FetchXML(url, 40)
	reorder = base.Clone()
	kids := reorder.Root.Children
	rot := make([]*xmldom.Node, 0, len(kids))
	rot = append(rot, kids[len(kids)/2:]...)
	rot = append(rot, kids[:len(kids)/2]...)
	reorder.Root.Children = rot
	reorder.Root.PreOrder(func(n *xmldom.Node) bool { n.XID = 0; return true })
	return base, small, reorder, rewrite
}

// BenchmarkDiff measures delta computation over webgen version chains with
// the warehouse's hash-caching discipline: the old version keeps its
// cached structural hash vector across iterations (as a committed version
// does), while the new version's is invalidated every iteration — so each
// iteration pays exactly what a commit pays, hashing the new tree plus the
// anchor-based alignment.
func BenchmarkDiff(b *testing.B) {
	base, small, reorder, rewrite := diffChain()
	for _, c := range []struct {
		name string
		new  *xmldom.Document
	}{
		{"smalledit", small},
		{"reorder", reorder},
		{"rewrite", rewrite},
	} {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.new.InvalidateHashes()
				if _, err := xydiff.Diff(base, c.new); err != nil {
					b.Fatalf("Diff: %v", err)
				}
			}
		})
	}
}

// BenchmarkClassify measures projecting a delta onto the new version — the
// per-document cost the manager and XML alerter now share via
// alerter.Doc.Classification instead of paying once per matched query.
func BenchmarkClassify(b *testing.B) {
	base, small, _, _ := diffChain()
	delta, err := xydiff.Diff(base, small)
	if err != nil {
		b.Fatalf("Diff: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xydiff.Classify(small, delta)
	}
}

// BenchmarkReporter reproduces the Section 3 capacity claim: the
// subscription system processes over 2.4 million notifications per day on
// one PC (≈ 28/s sustained; the burst rate here is far higher).
func BenchmarkReporter(b *testing.B) {
	rep := reporter.New(nil)
	const subs = 1000
	for i := 0; i < subs; i++ {
		rep.Register(fmt.Sprintf("S%d", i), &sublang.ReportSpec{
			When: []sublang.ReportTerm{{Kind: sublang.TermCount, Count: 99}},
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep.Notify(reporter.Notification{
			Subscription: fmt.Sprintf("S%d", i%subs),
			Label:        "UpdatedPage",
		})
	}
}

// BenchmarkEndToEnd measures the full notification chain — warehouse
// commit, alerters, weak/strong filter, matching, reporting — in
// documents per second, the unit behind "millions of pages per day with
// millions of subscriptions" (Section 1).
func BenchmarkEndToEnd(b *testing.B) {
	sys, err := New(Options{Delivery: DeliveryFunc(func(*Report) error { return nil })})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	// A subscription base over 200 sites with varied conditions.
	for i := 0; i < 200; i++ {
		src := fmt.Sprintf(`subscription Sub%d
monitoring
select <Hit url=URL/>
where URL extends "http://shop%d.example/"
  and new product contains %q
report when notifications.count > 1000000`, i, i%50, webgen.Vocabulary()[i%28])
		if _, err := sys.Subscribe(src); err != nil {
			b.Fatalf("Subscribe: %v", err)
		}
	}
	site := webgen.NewSite(webgen.SiteSpec{BaseURL: "http://shop7.example", Pages: 1, Products: 30, Seed: 13})
	url := site.XMLURLs()[0]
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		doc := site.FetchXML(url, 1+i%50)
		res, err := sys.Store.CommitXML(url, "", "shopping", doc)
		if err != nil {
			b.Fatalf("CommitXML: %v", err)
		}
		sys.Manager.ProcessDoc(&alerter.Doc{
			Meta: res.Meta, Status: res.Status, Doc: res.Doc, Delta: res.Delta,
		})
	}
	elapsed := time.Since(start)
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "docs/s")
	}
}

// BenchmarkProcessDoc isolates the manager's per-document hot path —
// alerter detection, matching, notification building, batched reporter
// delivery — from warehouse commit and version generation: the documents
// are committed once up front and then replayed through ProcessDoc. This
// is the path the de-contention work (pooled scratch, atomic counters,
// NotifyBatch) targets, so allocations per document are the headline
// number here.
func BenchmarkProcessDoc(b *testing.B) {
	sys, err := New(Options{Delivery: DeliveryFunc(func(*Report) error { return nil })})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	for i := 0; i < 200; i++ {
		src := fmt.Sprintf(`subscription Sub%d
monitoring
select <Hit url=URL/>
where URL extends "http://shop%d.example/"
  and new product contains %q
report when notifications.count > 1000000`, i, i%50, webgen.Vocabulary()[i%28])
		if _, err := sys.Subscribe(src); err != nil {
			b.Fatalf("Subscribe: %v", err)
		}
	}
	site := webgen.NewSite(webgen.SiteSpec{BaseURL: "http://shop7.example", Pages: 1, Products: 30, Seed: 13})
	url := site.XMLURLs()[0]
	docs := make([]*alerter.Doc, 0, 64)
	for i := 0; i < 64; i++ {
		res, err := sys.Store.CommitXML(url, "", "shopping", site.FetchXML(url, 1+i))
		if err != nil {
			b.Fatalf("CommitXML: %v", err)
		}
		docs = append(docs, &alerter.Doc{
			Meta: res.Meta, Status: res.Status, Doc: res.Doc, Delta: res.Delta,
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		sys.Manager.ProcessDoc(docs[i%len(docs)])
	}
	elapsed := time.Since(start)
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "docs/s")
	}
}

// BenchmarkFlowParallel measures the "Processing speed" distribution of
// Section 4.2: splitting the document flow across workers that share the
// Monitoring Query Processor (matching takes only a read lock).
func BenchmarkFlowParallel(b *testing.B) {
	cardC := shortScale([]int{200000}, []int{20000})[0]
	w := webgen.GenEventWorkload(14, 100000, cardC, 3, 20, 4096)
	matcher := loadMatcher(b, w)
	for _, workers := range shortScale([]int{1, 2, 4, 8}, []int{1}) {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.SetParallelism(workers)
			var i int64
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := atomic.AddInt64(&i, 1)
					matcher.Match(w.Docs[int(n)%len(w.Docs)])
				}
			})
		})
	}
}

// BenchmarkCompactMatcher compares the live map-based structure with the
// frozen Compact snapshot (the memory-oriented ablation of Section 4.2's
// 500 MB discussion); both run the same workload.
func BenchmarkCompactMatcher(b *testing.B) {
	w := webgen.GenEventWorkload(15, 100000, shortScale([]int{200000}, []int{20000})[0], 3, 20, 1024)
	live := loadMatcher(b, w)
	frozen := core.Freeze(live)
	b.Run("live", func(b *testing.B) {
		b.ReportMetric(float64(live.MemoryEstimate())/1e6, "MB")
		matchLoop(b, live, w.Docs)
	})
	b.Run("frozen", func(b *testing.B) {
		b.ReportMetric(float64(frozen.MemoryEstimate())/1e6, "MB")
		matchLoop(b, frozen, w.Docs)
	})
}

// BenchmarkChurn measures dynamic changes to the subscription base — the
// paper's future-work item on subscription churn: registrations and
// removals per second against a loaded structure.
func BenchmarkChurn(b *testing.B) {
	w := webgen.GenEventWorkload(16, 100000, shortScale([]int{200000}, []int{20000})[0], 3, 20, 1)
	matcher := loadMatcher(b, w)
	base := core.ComplexID(len(w.Complex))
	b.Run("add+remove", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			id := base + core.ComplexID(i)
			events := w.Complex[i%len(w.Complex)]
			if err := matcher.Add(id, events); err != nil {
				b.Fatalf("Add: %v", err)
			}
			if err := matcher.Remove(id); err != nil {
				b.Fatalf("Remove: %v", err)
			}
		}
	})
}

// BenchmarkChurnWhileMatching interleaves matching with live updates: the
// reader/writer contention a running system sees when users subscribe.
// The churn goroutine records its first Add/Remove error instead of
// discarding it — a silently failing writer would turn the benchmark into
// an uncontended read loop and overstate match throughput.
func BenchmarkChurnWhileMatching(b *testing.B) {
	w := webgen.GenEventWorkload(17, 100000, shortScale([]int{200000}, []int{20000})[0], 3, 20, 1024)
	matcher := loadMatcher(b, w)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		id := core.ComplexID(len(w.Complex))
		for {
			select {
			case <-stop:
				done <- nil
				return
			default:
			}
			if err := matcher.Add(id, w.Complex[int(id)%len(w.Complex)]); err != nil {
				done <- fmt.Errorf("churn Add(%d): %w", id, err)
				return
			}
			if err := matcher.Remove(id); err != nil {
				done <- fmt.Errorf("churn Remove(%d): %w", id, err)
				return
			}
			id++
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matcher.Match(w.Docs[i%len(w.Docs)])
	}
	b.StopTimer()
	close(stop)
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSubscribe measures full subscription registration through the
// manager: parsing, validation, event interning, alerter registration.
func BenchmarkSubscribe(b *testing.B) {
	sys, err := New(Options{})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	vocab := webgen.Vocabulary()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := fmt.Sprintf(`subscription Bench%d
monitoring
select <Hit url=URL/>
where URL extends "http://shop%d.example/" and new product contains %q
report when notifications.count > 1000`, i, i%1000, vocab[i%len(vocab)])
		if _, err := sys.Subscribe(src); err != nil {
			b.Fatalf("Subscribe: %v", err)
		}
	}
}

// BenchmarkParse compares the two DOM construction paths over the same
// serialized catalog: the stdlib-decoder Parse (kept as the
// differential-fuzz reference) against ParseBytes, the byte tokenizer
// with arena node allocation the crawler ingests through.
func BenchmarkParse(b *testing.B) {
	site := webgen.NewSite(webgen.SiteSpec{Products: 100, Seed: 12})
	url := site.XMLURLs()[0]
	data := site.FetchXMLBytes(url, 5)
	b.Run("stdlib", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := xmldom.Parse(bytes.NewReader(data)); err != nil {
				b.Fatalf("Parse: %v", err)
			}
		}
	})
	b.Run("bytes", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := xmldom.ParseBytes(data); err != nil {
				b.Fatalf("ParseBytes: %v", err)
			}
		}
	})
}

// BenchmarkCrawlAlert measures a full crawl→alert round over a corpus
// where few pages can interest anybody: the subscriptions watch a word
// carried by roughly one page in twenty (webgen's RareWord), so the
// streaming ingest gate can reject the rest from the serialized bytes
// before any DOM exists. The prefilter/alwaysdom ratio is the headline
// number of the zero-copy path. The subscriptions are presence-only on
// purpose — a URL clause or an element change condition is a standing
// reason to parse everything, which would disable the gate (see the
// gate construction in New).
func BenchmarkCrawlAlert(b *testing.B) {
	const word = "zyzzyva" // outside webgen's vocabulary: only RareWord pages match
	for _, mode := range []struct {
		name        string
		alwaysParse bool
	}{
		{"prefilter", false},
		{"alwaysdom", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			start := time.Date(2001, 5, 21, 0, 0, 0, 0, time.UTC)
			now := start
			sys, err := New(Options{
				Clock:       func() time.Time { return now },
				Delivery:    DeliveryFunc(func(*Report) error { return nil }),
				AlwaysParse: mode.alwaysParse,
			})
			if err != nil {
				b.Fatalf("New: %v", err)
			}
			for i := 0; i < 50; i++ {
				src := fmt.Sprintf(`subscription Watch%d
monitoring
select <Hit/>
where product contains %q
report when notifications.count > 1000000`, i, word)
				if _, err := sys.Subscribe(src); err != nil {
					b.Fatalf("Subscribe: %v", err)
				}
			}
			for i := 0; i < shortScale([]int{20}, []int{2})[0]; i++ {
				sys.AddSite(NewSite(SiteSpec{
					BaseURL: fmt.Sprintf("http://mall%d.example", i),
					Pages:   50, Products: 30, Seed: int64(i),
					RareWord: word, RareEvery: 20,
				}))
			}
			pages := sys.Crawler.Pages()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Cycle the virtual clock over a bounded version window so
				// every round re-crawls changed content without webgen's
				// per-version churn replay growing with b.N.
				now = start.Add(time.Duration(i%8) * sys.Crawler.ChangeEvery)
				sys.Crawler.FetchAll()
			}
			b.StopTimer()
			st := sys.Stats()
			if st.Crawler.Fetches > 0 {
				b.ReportMetric(100*float64(st.Crawler.Skipped)/float64(st.Crawler.Fetches), "skip%")
			}
			b.ReportMetric(float64(b.N*pages)/b.Elapsed().Seconds(), "pages/s")
		})
	}
}

// BenchmarkRefetchUnchanged measures the warehouse's tiered change
// detection on the monitoring loop's dominant case: refetches of tracked
// pages whose bytes differ (webgen whitespace reflow) but whose content
// did not change. The tiered mode resolves them with one streaming
// tokenize+hash (no DOM, no diff); the alwaysdiff baseline pays the full
// parse and canonical comparison per page.
func BenchmarkRefetchUnchanged(b *testing.B) {
	for _, mode := range []struct {
		name       string
		alwaysDiff bool
	}{
		{"tiered", false},
		{"alwaysdiff", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			start := time.Date(2001, 5, 21, 0, 0, 0, 0, time.UTC)
			now := start
			sys, err := New(Options{
				Clock:       func() time.Time { return now },
				Delivery:    DeliveryFunc(func(*Report) error { return nil }),
				AlwaysParse: true, // gate off: every page reaches the warehouse
				AlwaysDiff:  mode.alwaysDiff,
			})
			if err != nil {
				b.Fatalf("New: %v", err)
			}
			for i := 0; i < shortScale([]int{10}, []int{2})[0]; i++ {
				sys.AddSite(NewSite(SiteSpec{
					BaseURL: fmt.Sprintf("http://still%d.example", i),
					Pages:   20, Products: 100, Seed: int64(i),
					PerturbEvery: 1 << 16, PerturbKind: PerturbWhitespace,
				}))
			}
			pages := sys.Crawler.Pages()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Each round serves a byte-different serialization of the
				// same content: tier 1 misses, tier 2 decides.
				now = start.Add(time.Duration(i%8) * sys.Crawler.ChangeEvery)
				sys.Crawler.FetchAll()
			}
			b.StopTimer()
			ws := sys.Store.Stats()
			total := ws.SkippedRawSig + ws.SkippedStructHash + ws.Parsed
			if total > 0 {
				b.ReportMetric(100*float64(ws.SkippedStructHash)/float64(total), "structskip%")
			}
			b.ReportMetric(float64(b.N*pages)/b.Elapsed().Seconds(), "pages/s")
		})
	}
}

// BenchmarkClusterMatch measures distributed matching over loopback TCP —
// the per-document cost of the Section 4.2 distribution when blocks live
// in other processes (here: other goroutines behind real sockets).
func BenchmarkClusterMatch(b *testing.B) {
	w := webgen.GenEventWorkload(18, 10000, shortScale([]int{100000}, []int{10000})[0], 3, 20, 1024)
	for _, blocks := range shortScale([]int{1, 4}, []int{1}) {
		parts := make([]*core.Matcher, blocks)
		for i := range parts {
			parts[i] = core.NewMatcher()
		}
		for id, events := range w.Complex {
			if err := parts[id%blocks].Add(core.ComplexID(id), events); err != nil {
				b.Fatalf("Add: %v", err)
			}
		}
		addrs := make([]string, blocks)
		var servers []*cluster.Server
		for i, part := range parts {
			srv, err := cluster.Serve("127.0.0.1:0", core.Freeze(part))
			if err != nil {
				b.Fatalf("Serve: %v", err)
			}
			servers = append(servers, srv)
			addrs[i] = srv.Addr()
		}
		client, err := cluster.Dial(addrs...)
		if err != nil {
			b.Fatalf("Dial: %v", err)
		}
		b.Run(fmt.Sprintf("blocks=%d", blocks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := client.Match(w.Docs[i%len(w.Docs)]); err != nil {
					b.Fatalf("Match: %v", err)
				}
			}
		})
		client.Close()
		for _, s := range servers {
			s.Close()
		}
	}
}
