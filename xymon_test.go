package xymon

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

type testClock struct{ t time.Time }

func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newSystem(t *testing.T, opts Options) (*System, *testClock, *[]*Report) {
	t.Helper()
	c := &testClock{t: time.Date(2001, 5, 21, 0, 0, 0, 0, time.UTC)}
	var reports []*Report
	opts.Clock = c.now
	if opts.Delivery == nil {
		opts.Delivery = DeliveryFunc(func(r *Report) error {
			reports = append(reports, r)
			return nil
		})
	}
	sys, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return sys, c, &reports
}

func TestQuickstartFlow(t *testing.T) {
	sys, _, reports := newSystem(t, Options{})
	_, err := sys.Subscribe(`subscription Watch
monitoring
select <UpdatedPage url=URL/>
where URL extends "http://inria.fr/Xy/" and modified self
report when immediate`)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if n, err := sys.PushXML("http://inria.fr/Xy/index.xml", "", "", `<page><v>1</v></page>`); err != nil || n != 0 {
		t.Fatalf("first push: n=%d err=%v", n, err)
	}
	n, err := sys.PushXML("http://inria.fr/Xy/index.xml", "", "", `<page><v>2</v></page>`)
	if err != nil || n != 1 {
		t.Fatalf("second push: n=%d err=%v", n, err)
	}
	if len(*reports) != 1 || !strings.Contains((*reports)[0].Doc.XML(), "UpdatedPage") {
		t.Fatalf("reports = %v", *reports)
	}
}

func TestPushErrors(t *testing.T) {
	sys, _, _ := newSystem(t, Options{})
	if _, err := sys.PushXML("u", "", "", "not xml <"); err == nil {
		t.Error("bad XML should fail")
	}
	if _, err := sys.Subscribe("garbage"); err == nil {
		t.Error("bad subscription should fail")
	}
}

func TestCrawlSimulatedSite(t *testing.T) {
	sys, c, reports := newSystem(t, Options{})
	_, err := sys.Subscribe(`subscription Cameras
monitoring
select <CameraOffer url=URL/>
where URL extends "http://shop.example/"
  and new product contains "camera"
report when immediate`)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	sys.AddSite(NewSite(SiteSpec{BaseURL: "http://shop.example", Pages: 5, Products: 20, Seed: 9}))
	fetched := sys.Crawl()
	if fetched != 5 {
		t.Fatalf("Crawl = %d", fetched)
	}
	// With 20 products over a 30-word vocabulary, some page almost surely
	// sells a camera; the seed is fixed so this is deterministic.
	if len(*reports) == 0 {
		t.Fatal("no camera offers found on discovery crawl")
	}
	st := sys.Stats()
	if st.Pages != 5 || st.Crawler.Fetches != 5 || st.Manager.DocsProcessed != 5 {
		t.Errorf("stats = %+v", st)
	}
	// Later crawls only fetch when due.
	if n := sys.Crawl(); n != 0 {
		t.Errorf("immediate recrawl fetched %d", n)
	}
	c.advance(8 * 24 * time.Hour)
	if n := sys.Crawl(); n != 5 {
		t.Errorf("due recrawl fetched %d", n)
	}
}

func TestContinuousQueryOverWarehouse(t *testing.T) {
	sys, c, reports := newSystem(t, Options{})
	if _, err := sys.PushXML("http://museums.example/ams.xml", "", "culture",
		`<culture><museum><address>Amsterdam</address>
		 <painting><title>Night Watch</title></painting></museum></culture>`); err != nil {
		t.Fatalf("PushXML: %v", err)
	}
	_, err := sys.Subscribe(`subscription Art
continuous delta AmsterdamPaintings
select p/title from culture/museum m, m/painting p
where m/address contains "Amsterdam"
when biweekly
report when immediate`)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	sys.Tick()
	if len(*reports) != 1 || !strings.Contains((*reports)[0].Doc.XML(), "Night Watch") {
		t.Fatalf("first evaluation: %v", *reports)
	}
	// No change: biweekly re-evaluation stays silent (delta mode).
	c.advance(4 * 24 * time.Hour)
	sys.Tick()
	if len(*reports) != 1 {
		t.Fatalf("unchanged delta reported: %d", len(*reports))
	}
	// New painting appears; the next evaluation reports only the delta.
	if _, err := sys.PushXML("http://museums.example/ams.xml", "", "culture",
		`<culture><museum><address>Amsterdam</address>
		 <painting><title>Night Watch</title></painting>
		 <painting><title>Milkmaid</title></painting></museum></culture>`); err != nil {
		t.Fatalf("PushXML: %v", err)
	}
	c.advance(4 * 24 * time.Hour)
	sys.Tick()
	if len(*reports) != 2 {
		t.Fatalf("changed delta missing: %d", len(*reports))
	}
	out := (*reports)[1].Doc.XML()
	if !strings.Contains(out, "Milkmaid") || strings.Contains(out, "Night Watch") {
		t.Errorf("delta report = %s", out)
	}
}

func TestJournalPersistenceAcrossSystems(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	sys1, _, _ := newSystem(t, Options{JournalPath: path})
	if _, err := sys1.Subscribe(`subscription Persistent
monitoring select <P url=URL/> where URL extends "http://p.example/" and modified self
report when immediate`); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}

	sys2, _, reports2 := newSystem(t, Options{JournalPath: path})
	if got := sys2.Manager.Subscriptions(); len(got) != 1 || got[0] != "Persistent" {
		t.Fatalf("recovered subscriptions = %v", got)
	}
	sys2.PushXML("http://p.example/a.xml", "", "", `<a><v>1</v></a>`)
	sys2.PushXML("http://p.example/a.xml", "", "", `<a><v>2</v></a>`)
	if len(*reports2) != 1 {
		t.Errorf("recovered system reports = %d", len(*reports2))
	}
}

func TestTriePrefixOption(t *testing.T) {
	sys, _, reports := newSystem(t, Options{TriePrefixes: true})
	if _, err := sys.Subscribe(`subscription T
monitoring select <P url=URL/> where URL extends "http://t.example/" and modified self
report when immediate`); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	sys.PushXML("http://t.example/x.xml", "", "", `<a><v>1</v></a>`)
	sys.PushXML("http://t.example/x.xml", "", "", `<a><v>2</v></a>`)
	if len(*reports) != 1 {
		t.Errorf("trie-based system reports = %d", len(*reports))
	}
}

func TestHTMLMonitoring(t *testing.T) {
	sys, _, reports := newSystem(t, Options{})
	if _, err := sys.Subscribe(`subscription HtmlWatch
monitoring
select <Mention url=URL/>
where URL extends "http://news.example/"
  and self contains "xyleme"
report when immediate`); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	n, err := sys.PushHTML("http://news.example/today.html",
		[]byte("<html><body>Xyleme monitors the web</body></html>"))
	if err != nil || n != 1 {
		t.Fatalf("PushHTML: n=%d err=%v", n, err)
	}
	if len(*reports) != 1 {
		t.Errorf("reports = %d", len(*reports))
	}
	n, _ = sys.PushHTML("http://news.example/other.html", []byte("<html>nothing here</html>"))
	if n != 0 {
		t.Errorf("unrelated page produced %d notifications", n)
	}
}

func TestSemanticAutoClassification(t *testing.T) {
	sys, _, reports := newSystem(t, Options{
		Domains: map[string][]string{
			"culture":  {"museum", "painting", "title", "address"},
			"shopping": {"catalog", "product", "price"},
		},
	})
	// Push without an explicit domain: the semantic module classifies it.
	if _, err := sys.PushXML("http://museums.example/x.xml", "", "",
		`<culture><museum><address>Amsterdam</address>
		 <painting><title>Night Watch</title></painting></museum></culture>`); err != nil {
		t.Fatalf("PushXML: %v", err)
	}
	e, err := sys.Store.Get("http://museums.example/x.xml")
	if err != nil || e.Meta.Domain != "culture" {
		t.Fatalf("classified domain = %q, err %v", e.Meta.Domain, err)
	}
	// A domain condition now matches the classified document.
	if _, err := sys.Subscribe(`subscription CultureWatch
monitoring
select <CulturePage url=URL/>
where domain = "culture" and modified self
report when immediate`); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if _, err := sys.PushXML("http://museums.example/x.xml", "", "",
		`<culture><museum><address>Amsterdam</address>
		 <painting><title>Milkmaid</title></painting></museum></culture>`); err != nil {
		t.Fatalf("PushXML: %v", err)
	}
	if len(*reports) != 1 {
		t.Fatalf("reports = %d, want 1 (domain condition matched)", len(*reports))
	}
}

func TestDeletedPageMonitoring(t *testing.T) {
	sys, c, reports := newSystem(t, Options{})
	if _, err := sys.Subscribe(`subscription Obituary
monitoring
select <PageGone url=URL/>
where URL extends "http://mort.example/" and deleted self
monitoring
select <ProductGone url=URL/>
where URL extends "http://mort.example/" and deleted product
report when immediate`); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	sys.AddSite(NewSite(SiteSpec{BaseURL: "http://mort.example", Pages: 1, Products: 5, Seed: 14, Lifetime: 2}))
	sys.Crawl()
	for i := 0; i < 30 && len(*reports) == 0; i++ {
		c.advance(8 * 24 * time.Hour)
		sys.Crawl()
	}
	if len(*reports) < 2 {
		t.Fatalf("reports = %d, want PageGone and ProductGone", len(*reports))
	}
	var all strings.Builder
	for _, r := range *reports {
		all.WriteString(r.Doc.XML())
	}
	if !strings.Contains(all.String(), "PageGone") || !strings.Contains(all.String(), "ProductGone") {
		t.Errorf("reports = %s", all.String())
	}
}

// TestDiscoveryMonitoring is the paper's Section 1 example: "discovery of
// a new page within a certain semantic domain". Hidden pages surface
// through links on the site's HTML pages; the subscription fires when the
// crawler discovers and fetches them.
func TestDiscoveryMonitoring(t *testing.T) {
	sys, c, reports := newSystem(t, Options{})
	if _, err := sys.Subscribe(`subscription NewShopPages
monitoring
select <Discovered url=URL/>
where domain = "shopping" and new self
report when immediate`); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	sys.AddSite(NewSite(SiteSpec{
		BaseURL: "http://disc.example", Pages: 1, HTMLShare: 1, HiddenPages: 1,
		Seed: 33, Domain: "shopping",
	}))
	sys.Crawl()
	initial := len(*reports) // the pre-registered catalog page is new too
	for i := 0; i < 10 && sys.Stats().Crawler.Discovered == 0; i++ {
		c.advance(8 * 24 * time.Hour)
		sys.Crawl()
		sys.Crawl() // fetch freshly discovered pages
	}
	if sys.Stats().Crawler.Discovered == 0 {
		t.Fatal("no discovery happened")
	}
	if len(*reports) <= initial {
		t.Fatalf("no report for the discovered page: %d vs %d", len(*reports), initial)
	}
	last := (*reports)[len(*reports)-1].Doc.XML()
	if !strings.Contains(last, "hidden0.xml") {
		t.Errorf("report = %s", last)
	}
}

func TestWarehousePersistenceAcrossSystems(t *testing.T) {
	dir := t.TempDir()
	sys1, _, _ := newSystem(t, Options{DataDir: dir})
	sys1.PushXML("http://w.example/a.xml", "", "shopping", `<c><p>radio</p></c>`)
	sys1.PushXML("http://w.example/a.xml", "", "shopping", `<c><p>radio</p><p>tv</p></c>`)
	if err := sys1.SaveWarehouse(""); err != nil {
		t.Fatalf("SaveWarehouse: %v", err)
	}

	sys2, _, reports := newSystem(t, Options{DataDir: dir})
	if sys2.Store.Len() != 1 {
		t.Fatalf("restored pages = %d", sys2.Store.Len())
	}
	// Change detection continues against the restored state: the same
	// content is unchanged, different content raises updated.
	if _, err := sys2.Subscribe(`subscription W
monitoring select <U url=URL/> where URL extends "http://w.example/" and modified self
report when immediate`); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	n, err := sys2.PushXML("http://w.example/a.xml", "", "shopping", `<c><p>radio</p><p>tv</p></c>`)
	if err != nil || n != 0 {
		t.Fatalf("unchanged push after restore: n=%d err=%v", n, err)
	}
	n, err = sys2.PushXML("http://w.example/a.xml", "", "shopping", `<c><p>radio</p></c>`)
	if err != nil || n != 1 || len(*reports) != 1 {
		t.Fatalf("changed push after restore: n=%d err=%v reports=%d", n, err, len(*reports))
	}
	// SaveWarehouse without any directory fails.
	sys3, _, _ := newSystem(t, Options{})
	if err := sys3.SaveWarehouse(""); err == nil {
		t.Error("SaveWarehouse without DataDir should fail")
	}
}
