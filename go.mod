module xymon

go 1.24
