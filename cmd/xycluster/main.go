// Command xycluster runs the distributed Monitoring Query Processor from
// the shell: the Section 4.2 distribution over real processes.
//
//	xycluster freeze -c 100000 -a 10000 -m 3 -blocks 4 -out dir/
//	    generate a synthetic subscription base, partition it and write one
//	    frozen snapshot per block (block0.xyc, block1.xyc, …)
//
//	xycluster serve -addr :7070 block0.xyc
//	    serve one block's snapshot over TCP (frozen v1 block)
//
//	xycluster coord -addr :7060 -wal dir/ -replicas 2
//	    run the partition-map coordinator: admits block joins/leaves,
//	    rebalances partitions with WAL-backed handoffs
//
//	xycluster serve -addr :7070 -coord host:7060
//	    serve a dynamic (v2 partition-map) block and join the cluster;
//	    SIGINT/SIGTERM leaves gracefully, migrating subscriptions away
//
//	xycluster match -blocks host1:7070,host2:7070 1,3,5
//	    match one atomic event set against every block and print the
//	    complex event ids
//
//	xycluster bench -blocks host1:7070,host2:7070 -p 20 -a 10000 -n 5000
//	    drive random documents through the cluster and report the rate
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"xymon/internal/cluster"
	"xymon/internal/core"
	"xymon/internal/webgen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "freeze":
		err = runFreeze(os.Args[2:])
	case "serve":
		err = runServe(os.Args[2:])
	case "coord":
		err = runCoord(os.Args[2:])
	case "match":
		err = runMatch(os.Args[2:])
	case "bench":
		err = runBench(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "xycluster: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  xycluster freeze -c N -a N -m N -blocks N -out DIR [-seed N]
  xycluster serve -addr HOST:PORT FILE.xyc
  xycluster serve -addr HOST:PORT -coord HOST:PORT [-advertise HOST:PORT]
  xycluster coord -addr HOST:PORT -wal DIR [-replicas N]
  xycluster match -blocks ADDR[,ADDR...] EVENT[,EVENT...]
  xycluster bench -blocks ADDR[,ADDR...] [-p N] [-a N] [-n N] [-seed N]`)
}

func runFreeze(args []string) error {
	fs := flag.NewFlagSet("freeze", flag.ExitOnError)
	cardC := fs.Int("c", 100000, "complex events")
	cardA := fs.Int("a", 10000, "atomic event universe")
	m := fs.Int("m", 3, "events per complex event")
	blocks := fs.Int("blocks", 4, "partition blocks")
	out := fs.String("out", ".", "output directory")
	seed := fs.Int64("seed", 1, "workload seed")
	fs.Parse(args)
	w := webgen.GenEventWorkload(*seed, *cardA, *cardC, *m, 1, 1)
	parts := make([]*core.Matcher, *blocks)
	for i := range parts {
		parts[i] = core.NewMatcher()
	}
	for id, events := range w.Complex {
		if err := parts[id%*blocks].Add(core.ComplexID(id), events); err != nil {
			return err
		}
	}
	for i, part := range parts {
		frozen := core.Freeze(part)
		path := filepath.Join(*out, fmt.Sprintf("block%d.xyc", i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		n, err := frozen.WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d complex events, %d bytes\n", path, part.Len(), n)
	}
	return nil
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address")
	coord := fs.String("coord", "", "coordinator address (dynamic v2 block)")
	advertise := fs.String("advertise", "", "address announced to the coordinator (default: the bound listen address)")
	fs.Parse(args)
	if *coord != "" {
		if fs.NArg() != 0 {
			return fmt.Errorf("a dynamic block takes no snapshot file; subscriptions arrive over the wire")
		}
		return serveDynamic(*addr, *coord, *advertise)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("serve needs exactly one snapshot file (or -coord for a dynamic block)")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	block, err := core.ReadCompact(f)
	f.Close()
	if err != nil {
		return err
	}
	srv, err := cluster.Serve(*addr, block)
	if err != nil {
		return err
	}
	fmt.Printf("serving %d complex events on %s\n", block.Len(), srv.Addr())
	waitForSignal()
	fmt.Println("shutting down: draining connections")
	return srv.Close()
}

// serveDynamic runs a v2 partition-map block: bind, join the cluster,
// serve until SIGINT/SIGTERM, then leave gracefully (the coordinator
// migrates this block's partitions away before the leave acks) and
// drain.
func serveDynamic(addr, coord, advertise string) error {
	m := core.NewMatcher()
	opts := []cluster.ServerOption{}
	if advertise != "" {
		opts = append(opts, cluster.WithAdvertise(advertise))
	}
	srv, err := cluster.ServeDynamic(addr, m, opts...)
	if err != nil {
		return err
	}
	self := advertise
	if self == "" {
		self = srv.Addr()
	}
	if err := cluster.JoinCluster(coord, self); err != nil {
		_ = srv.Close()
		return fmt.Errorf("join %s: %w", coord, err)
	}
	fmt.Printf("block %s joined cluster at %s\n", self, coord)
	waitForSignal()
	fmt.Println("shutting down: leaving cluster")
	if err := cluster.LeaveCluster(coord, self); err != nil {
		fmt.Fprintf(os.Stderr, "xycluster: leave: %v (shutting down anyway)\n", err)
	}
	return srv.Close()
}

func runCoord(args []string) error {
	fs := flag.NewFlagSet("coord", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7060", "listen address")
	walDir := fs.String("wal", "", "transfer journal directory")
	replicas := fs.Int("replicas", 2, "replication factor R")
	fs.Parse(args)
	if *walDir == "" {
		return fmt.Errorf("coord needs -wal (the transfer journal directory)")
	}
	c, err := cluster.NewCoord(*walDir, *replicas)
	if err != nil {
		return err
	}
	if err := c.ServeCoord(*addr); err != nil {
		_ = c.Close()
		return err
	}
	fmt.Printf("coordinator on %s (R=%d, journal %s)\n", c.Addr(), *replicas, *walDir)
	waitForSignal()
	fmt.Println("shutting down coordinator")
	return c.Close()
}

// waitForSignal blocks until SIGINT or SIGTERM.
func waitForSignal() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	signal.Stop(sig)
}

func parseBlocks(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func runMatch(args []string) error {
	fs := flag.NewFlagSet("match", flag.ExitOnError)
	blocks := fs.String("blocks", "", "comma-separated block addresses")
	fs.Parse(args)
	addrs := parseBlocks(*blocks)
	if len(addrs) == 0 || fs.NArg() != 1 {
		return fmt.Errorf("match needs -blocks and one event list")
	}
	var events []core.Event
	for _, part := range strings.Split(fs.Arg(0), ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
		if err != nil {
			return fmt.Errorf("bad event %q: %v", part, err)
		}
		events = append(events, core.Event(v))
	}
	client, err := cluster.Dial(addrs...)
	if err != nil {
		return err
	}
	defer client.Close()
	ids, err := client.Match(core.Canonical(events))
	if err != nil {
		return err
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Printf("%d complex events matched: %v\n", len(ids), ids)
	return nil
}

func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	blocks := fs.String("blocks", "", "comma-separated block addresses")
	p := fs.Int("p", 20, "events per document")
	cardA := fs.Int("a", 10000, "atomic event universe")
	n := fs.Int("n", 5000, "documents to match")
	seed := fs.Int64("seed", 2, "document seed")
	fs.Parse(args)
	addrs := parseBlocks(*blocks)
	if len(addrs) == 0 {
		return fmt.Errorf("bench needs -blocks")
	}
	client, err := cluster.Dial(addrs...)
	if err != nil {
		return err
	}
	defer client.Close()
	rng := rand.New(rand.NewSource(*seed))
	docs := make([]core.EventSet, 256)
	for i := range docs {
		events := make([]core.Event, *p)
		for j := range events {
			events[j] = core.Event(rng.Intn(*cardA))
		}
		docs[i] = core.Canonical(events)
	}
	matches := 0
	start := time.Now()
	for i := 0; i < *n; i++ {
		ids, err := client.Match(docs[i%len(docs)])
		if err != nil {
			return err
		}
		matches += len(ids)
	}
	elapsed := time.Since(start)
	fmt.Printf("%d documents over %d blocks in %v: %.0f docs/s, %d matches\n",
		*n, len(addrs), elapsed.Round(time.Millisecond),
		float64(*n)/elapsed.Seconds(), matches)
	return nil
}
