package main

import (
	"os"
	"path/filepath"
	"testing"

	"xymon/internal/cluster"
	"xymon/internal/core"
)

func TestParseBlocks(t *testing.T) {
	got := parseBlocks(" a:1, ,b:2 ,")
	if len(got) != 2 || got[0] != "a:1" || got[1] != "b:2" {
		t.Errorf("parseBlocks = %v", got)
	}
	if parseBlocks("") != nil {
		t.Error("empty input should yield nil")
	}
}

func TestFreezeProducesLoadableSnapshots(t *testing.T) {
	dir := t.TempDir()
	if err := runFreeze([]string{"-c", "2000", "-a", "500", "-m", "3", "-blocks", "3", "-out", dir, "-seed", "9"}); err != nil {
		t.Fatalf("runFreeze: %v", err)
	}
	total := 0
	var blocks []*core.Compact
	for i := 0; i < 3; i++ {
		f, err := os.Open(filepath.Join(dir, "block"+string(rune('0'+i))+".xyc"))
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		c, err := core.ReadCompact(f)
		f.Close()
		if err != nil {
			t.Fatalf("ReadCompact: %v", err)
		}
		total += c.Len()
		blocks = append(blocks, c)
	}
	if total != 2000 {
		t.Errorf("total complex events across blocks = %d, want 2000", total)
	}
	// The snapshots are directly servable.
	srv, err := cluster.Serve("127.0.0.1:0", blocks[0])
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	client, err := cluster.Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()
	if _, err := client.Match(core.EventSet{1, 2, 3}); err != nil {
		t.Errorf("Match: %v", err)
	}
}

func TestMatchRejectsBadArgs(t *testing.T) {
	if err := runMatch([]string{"-blocks", ""}); err == nil {
		t.Error("match without blocks should fail")
	}
	if err := runBench([]string{"-blocks", ""}); err == nil {
		t.Error("bench without blocks should fail")
	}
	if err := runServe([]string{"-addr", "127.0.0.1:0"}); err == nil {
		t.Error("serve without file should fail")
	}
}
