package main

import (
	"go/ast"
	"go/token"
	"strings"
)

// runWalfsync flags os.Rename calls that install a file created in the
// same function without a parent-directory sync after the rename. The
// create→fsync→rename shape makes the new content atomic, but the rename
// itself lives in the directory: until the directory is fsynced, a crash
// can roll the whole install back — the durability bug the WAL's
// checkpoint protocol exists to prevent. A rename of a file the function
// did not create (moving, rotating) is the caller's concern and is not
// flagged.
//
// internal/wal is exempt: it owns the helpers (SyncDir, WriteFileSync)
// the rest of the tree discharges this rule with.
func runWalfsync(pkg *Package) []Finding {
	if strings.HasSuffix(pkg.Path, "/internal/wal") {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, walfsyncFunc(pkg, fd)...)
		}
	}
	return out
}

// walfsyncFunc checks one function body lexically: every os.Rename
// preceded by a file creation needs a SyncDir call or a .Sync() call
// after it.
func walfsyncFunc(pkg *Package, fd *ast.FuncDecl) []Finding {
	var creates, renames, syncs []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := pkgFuncCall(pkg, call, "os"); ok {
			switch name {
			case "Create", "OpenFile", "CreateTemp", "WriteFile":
				creates = append(creates, call.Pos())
			case "Rename":
				renames = append(renames, call.Pos())
			}
			return true
		}
		// The discharge shapes: wal.SyncDir (or a local equivalent named
		// SyncDir) and an explicit handle .Sync() — after the rename, the
		// latter can only be the reopened parent directory. WriteFileSync
		// creates its file, so renaming its output still needs the
		// directory sync.
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			switch fun.Sel.Name {
			case "SyncDir", "Sync":
				syncs = append(syncs, call.Pos())
			case "WriteFileSync":
				creates = append(creates, call.Pos())
			}
		case *ast.Ident:
			switch fun.Name {
			case "SyncDir":
				syncs = append(syncs, call.Pos())
			case "WriteFileSync":
				creates = append(creates, call.Pos())
			}
		}
		return true
	})
	var out []Finding
	for _, rp := range renames {
		created := false
		for _, cp := range creates {
			if cp < rp {
				created = true
				break
			}
		}
		if !created {
			continue
		}
		synced := false
		for _, sp := range syncs {
			if sp > rp {
				synced = true
				break
			}
		}
		if !synced {
			out = append(out, Finding{
				Pos:  rp,
				Rule: "walfsync",
				Msg:  "os.Rename installs a file created in this function with no parent-directory sync after it; a crash can undo the rename (use wal.SyncDir)",
			})
		}
	}
	return out
}
