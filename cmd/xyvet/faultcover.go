package main

import (
	"fmt"
	"go/token"
	"strings"
)

// runFaultcover enforces the fault-injection discipline: raw I/O
// (net.Conn reads/writes, net dials, *os.File operations, os.Rename)
// reachable from a pipeline entry point must flow through an
// internal/faults injection point or a registered wrapper. Entry points
// are the exported functions of the acquisition→delivery packages
// (crawler, cluster, wal, warehouse, reporter) plus anything marked
// //xyvet:faultentry; a function counts as covered when it (or any
// caller on the path) consults a fault point — calls Injector.Fire or
// Injector.Check, invokes a wal.Hook, lives in internal/faults, or
// carries //xyvet:faultpoint. The walk descends through static calls,
// resolved interface calls and go/defer bodies, but not into covered
// functions: everything below a fault point is by definition testable by
// injection.
func runFaultcover(e *engine) []Finding {
	reported := make(map[token.Pos]bool)
	var out []Finding

	for _, entry := range e.nodes {
		if !entry.sum.entry || entry.sum.consults {
			continue
		}
		// BFS from the entry, skipping covered callees; prev reconstructs
		// the call path for the message.
		prev := make(map[*funcNode]*funcNode)
		visited := map[*funcNode]bool{entry: true}
		queue := []*funcNode{entry}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, io := range n.sum.rawIO {
				if reported[io.pos] {
					continue
				}
				reported[io.pos] = true
				out = append(out, Finding{
					Pos:  io.pos,
					Rule: "faultcover",
					Msg: fmt.Sprintf("%s reachable from entry point %s (via %s) without passing an internal/faults injection point; consult the injector on this path or mark a wrapper with //xyvet:faultpoint",
						io.what, entry.name(), renderEntryPath(entry, n, prev)),
				})
			}
			for _, c := range n.sum.calls {
				for _, t := range c.targets {
					if visited[t] || t.sum.consults {
						continue
					}
					visited[t] = true
					prev[t] = n
					queue = append(queue, t)
				}
			}
		}
	}
	return out
}

// renderEntryPath renders "entry → a → b" from the BFS predecessor map.
func renderEntryPath(entry, n *funcNode, prev map[*funcNode]*funcNode) string {
	var rev []*funcNode
	for cur := n; cur != entry; cur = prev[cur] {
		rev = append(rev, cur)
	}
	parts := []string{entry.name()}
	for i := len(rev) - 1; i >= 0; i-- {
		parts = append(parts, rev[i].name())
	}
	return strings.Join(parts, " → ")
}
