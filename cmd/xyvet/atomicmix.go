package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// runAtomicmix finds fields (and package-level variables) that are
// accessed through sync/atomic somewhere in the module but read or
// written plainly elsewhere. Mixing the two is a data race even when the
// plain access "only reads": the atomic functions only synchronize with
// each other. The one tolerated spot is the owning constructor
// (func New*/new*), where the value has not escaped yet — a plain
// initial assignment there is idiomatic. The fix is either to use
// atomic.Load/Store at the plain site too, or to migrate the field to a
// typed atomic (atomic.Uint64 and friends), which makes the mix
// impossible to write.
func runAtomicmix(e *engine) []Finding {
	// Pass 1, module-wide: every object passed by address to a
	// sync/atomic function, with one witness position; the idents used in
	// those operands are exempt from pass 2.
	atomicObjs := make(map[types.Object]token.Pos)
	operand := make(map[*ast.Ident]bool)
	for _, pkg := range e.pkgs {
		if pkg.Types == nil {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				if _, isAtomic := pkgFuncCall(pkg, call, "sync/atomic"); !isAtomic || len(call.Args) == 0 {
					return true
				}
				un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					return true
				}
				id := baseIdent(un.X)
				if id == nil {
					return true
				}
				obj := pkg.Info.Uses[id]
				if v, isVar := obj.(*types.Var); isVar && (v.IsField() || (v.Pkg() != nil && v.Parent() == v.Pkg().Scope())) {
					if _, seen := atomicObjs[obj]; !seen {
						atomicObjs[obj] = call.Pos()
					}
					operand[id] = true
				}
				return true
			})
		}
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	// Pass 2, module-wide: any other use of those objects outside the
	// owning constructor is a plain access racing the atomic ones.
	var out []Finding
	for _, pkg := range e.pkgs {
		if pkg.Types == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if name := fd.Name.Name; strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") {
					continue
				}
				ast.Inspect(fd.Body, func(node ast.Node) bool {
					// A struct-literal key is a declaration-like mention,
					// not an access; skip it (map keys are values, kept).
					if kv, ok := node.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							if v, isVar := pkg.Info.Uses[id].(*types.Var); isVar && v.IsField() {
								ast.Inspect(kv.Value, func(n ast.Node) bool { return inspectIdent(pkg, n, atomicObjs, operand, e, &out) })
								return false
							}
						}
					}
					return inspectIdent(pkg, node, atomicObjs, operand, e, &out)
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// inspectIdent reports one plain use of an atomically-accessed object.
func inspectIdent(pkg *Package, node ast.Node, atomicObjs map[types.Object]token.Pos, operand map[*ast.Ident]bool, e *engine, out *[]Finding) bool {
	id, ok := node.(*ast.Ident)
	if !ok || operand[id] {
		return true
	}
	obj := pkg.Info.Uses[id]
	witness, ok := atomicObjs[obj]
	if !ok {
		return true
	}
	*out = append(*out, Finding{
		Pos:  id.Pos(),
		Rule: "atomicmix",
		Msg: fmt.Sprintf("%s is accessed with sync/atomic (e.g. at %s) but read/written plainly here; mixing atomic and plain access is a data race — use atomic.Load/Store or a typed atomic",
			atomicDisplay(obj), e.shortPos(witness)),
	})
	return true
}

// atomicDisplay renders the racy object for messages.
func atomicDisplay(obj types.Object) string {
	v := obj.(*types.Var)
	if v.IsField() {
		if v.Pkg() != nil {
			return "field " + v.Pkg().Name() + "." + v.Name()
		}
		return "field " + v.Name()
	}
	if v.Pkg() != nil {
		return v.Pkg().Name() + "." + v.Name()
	}
	return v.Name()
}

// baseIdent peels selectors/parens/indexes down to the rightmost name:
// &s.counts[i] → counts, &n → n.
func baseIdent(expr ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			return x.Sel
		case *ast.IndexExpr:
			expr = x.X
		default:
			return nil
		}
	}
}
