package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// engine is the interprocedural analysis state shared by the deep rules:
// a module-wide call graph over every loaded package (static calls
// resolved through go/types, interface calls bounded to the in-module
// implementations of the method) with one summary per declared function,
// propagated to a fixpoint (see summary.go). Per-function rules keep
// running per package; the engine is what lets lockorder, deeplock,
// faultcover and connguard see through call boundaries.
type engine struct {
	modpath string
	fset    *token.FileSet
	pkgs    []*Package // all loaded, sorted by import path

	nodes []*funcNode // every declared function with a body, deterministic order
	byObj map[*types.Func]*funcNode

	// named lists the concrete (non-interface) named types of the loaded
	// packages — the candidate set for interface-call resolution.
	named []*types.Named

	// localFuncs, per package, holds variables bound to function literals
	// (calling one is not an external callback) — shared with lockcheck's
	// heuristic.
	localFuncs map[*Package]map[types.Object]bool

	netConn *types.Interface // resolved net.Conn, nil when never imported

	implMu    sync.Mutex
	implCache map[implKey][]*funcNode
}

type implKey struct {
	iface  *types.Interface
	method string
}

// funcNode is one declared function or method in the call graph.
type funcNode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
	sum  summary
}

// name renders the node as pkg.Func or pkg.Type.Method for messages.
func (n *funcNode) name() string {
	pkg := n.fn.Pkg().Name()
	if recv := n.fn.Signature().Recv(); recv != nil {
		t := deref(recv.Type())
		if named, ok := t.(*types.Named); ok {
			return pkg + "." + named.Obj().Name() + "." + n.fn.Name()
		}
	}
	return pkg + "." + n.fn.Name()
}

// directive reports whether the function's doc comment carries the given
// //xyvet:<name> marker (e.g. faultentry, faultpoint).
func (n *funcNode) directive(name string) bool {
	if n.decl.Doc == nil {
		return false
	}
	for _, c := range n.decl.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == "xyvet:"+name || strings.HasPrefix(text, "xyvet:"+name+" ") {
			return true
		}
	}
	return false
}

// buildEngine assembles the call graph and computes every function
// summary: a parallel local pass per function, then the global fixpoints.
func buildEngine(pkgs []*Package) *engine {
	e := &engine{
		fset:       pkgs[0].Fset,
		byObj:      make(map[*types.Func]*funcNode),
		localFuncs: make(map[*Package]map[types.Object]bool),
		implCache:  make(map[implKey][]*funcNode),
	}
	e.pkgs = append(e.pkgs, pkgs...)
	sort.Slice(e.pkgs, func(i, j int) bool { return e.pkgs[i].Path < e.pkgs[j].Path })
	if len(e.pkgs) > 0 {
		e.modpath = e.pkgs[0].ModPath
	}

	for _, pkg := range e.pkgs {
		if pkg.Types == nil {
			continue
		}
		e.localFuncs[pkg] = localClosureVars(pkg)
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &funcNode{fn: fn, decl: fd, pkg: pkg}
				e.byObj[fn] = n
				e.nodes = append(e.nodes, n)
			}
		}
		// Candidate implementations for interface-call resolution: every
		// concrete named type of the loaded set.
		scope := pkg.Types.Scope()
		names := scope.Names()
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			e.named = append(e.named, named)
		}
	}
	sort.Slice(e.nodes, func(i, j int) bool { return e.posLess(e.nodes[i].decl.Pos(), e.nodes[j].decl.Pos()) })
	e.netConn = resolveNetConn(e.pkgs)

	// Local summary pass, one function at a time across workers.
	workers := runtime.GOMAXPROCS(0)
	if workers > len(e.nodes) {
		workers = len(e.nodes)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan *funcNode)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := range next {
				summarize(e, n)
			}
		}()
	}
	for _, n := range e.nodes {
		next <- n
	}
	close(next)
	wg.Wait()

	e.fixpoint()
	return e
}

// posLess orders positions by (filename, offset). Raw token.Pos values
// are scheduling-dependent — parallel parsing interleaves fset.AddFile —
// so every cross-file ordering that feeds deterministic output (node
// order, hence lock-graph node ids and witness selection) resolves
// through the FileSet instead.
func (e *engine) posLess(a, b token.Pos) bool {
	pa, pb := e.fset.Position(a), e.fset.Position(b)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	return pa.Offset < pb.Offset
}

// implementers resolves an interface method call to the concrete
// in-module methods that can receive it: every loaded named type whose
// method set satisfies the interface contributes its method of that name.
func (e *engine) implementers(iface *types.Interface, method string) []*funcNode {
	key := implKey{iface, method}
	e.implMu.Lock()
	if cached, ok := e.implCache[key]; ok {
		e.implMu.Unlock()
		return cached
	}
	e.implMu.Unlock()

	var out []*funcNode
	for _, named := range e.named {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), method)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if n, ok := e.byObj[fn]; ok {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return e.posLess(out[i].decl.Pos(), out[j].decl.Pos()) })

	e.implMu.Lock()
	e.implCache[key] = out
	e.implMu.Unlock()
	return out
}

// resolveNetConn finds the net.Conn interface anywhere in the loaded
// packages' import graphs, or nil when the module never touches net.
func resolveNetConn(pkgs []*Package) *types.Interface {
	seen := make(map[*types.Package]bool)
	var find func(p *types.Package) *types.Package
	find = func(p *types.Package) *types.Package {
		if p == nil || seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == "net" {
			return p
		}
		for _, imp := range p.Imports() {
			if r := find(imp); r != nil {
				return r
			}
		}
		return nil
	}
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		if netPkg := find(pkg.Types); netPkg != nil {
			if obj := netPkg.Scope().Lookup("Conn"); obj != nil {
				iface, _ := obj.Type().Underlying().(*types.Interface)
				return iface
			}
		}
	}
	return nil
}

// fixpoint propagates the local facts over the call graph until stable:
// may-block witnesses, fault-point consultation, conn-deadline coverage,
// and the transitive lock-acquisition sets that feed the lock-order
// graph. Every lattice is monotone (booleans and growing sets), so the
// iteration terminates even over recursion and call cycles.
func (e *engine) fixpoint() {
	for changed := true; changed; {
		changed = false
		for _, n := range e.nodes {
			s := &n.sum
			for _, c := range s.calls {
				if c.async {
					continue
				}
				for _, t := range c.targets {
					ts := &t.sum
					// may-block: only static concrete calls transmit the
					// fact; interface dispatch under a lock is lockcheck's
					// (and deeplock skips it to avoid double reports).
					if c.kind == callStatic && s.mayBlock == nil && ts.mayBlock != nil {
						s.mayBlock = &blockFact{pos: c.pos, why: "calls " + t.name(), next: t}
						changed = true
					}
					if c.kind == callStatic && !s.consults && ts.consults {
						s.consults = true
						changed = true
					}
					if c.kind == callStatic && !s.deadline && ts.deadline {
						s.deadline = true
						changed = true
					}
					// lock acquisitions flow through both static and
					// resolved interface calls.
					for _, obj := range ts.acquireOrder {
						if _, ok := s.acquires[obj]; !ok {
							if s.acquires == nil {
								s.acquires = make(map[types.Object]*acqPath)
							}
							inner := ts.acquires[obj]
							s.acquires[obj] = &acqPath{
								event: inner.event,
								owner: inner.owner,
								via:   append([]*funcNode{t}, inner.via...),
							}
							s.acquireOrder = append(s.acquireOrder, obj)
							changed = true
						}
					}
				}
			}
		}
	}
}
