package main

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// runPrintcheck bans direct terminal output from library packages: all
// user-visible output of the system flows through the reporter (and a
// command's own main package). fmt.Fprint* to an injected writer and
// fmt.Sprint*/Errorf are fine; writing to the process's stdout/stderr or
// the global logger from internal/* or pubsub is not.
func runPrintcheck(pkg *Package) []Finding {
	if isMainPkg(pkg) {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := pkgFuncCall(pkg, call, "fmt"); ok && strings.HasPrefix(name, "Print") {
				out = append(out, Finding{
					Pos:  call.Pos(),
					Rule: "printcheck",
					Msg:  fmt.Sprintf("fmt.%s writes to stdout from a library package; route output through the reporter or an injected io.Writer", name),
				})
			}
			if name, ok := pkgFuncCall(pkg, call, "log"); ok && logOutput(name) {
				out = append(out, Finding{
					Pos:  call.Pos(),
					Rule: "printcheck",
					Msg:  fmt.Sprintf("log.%s uses the global logger from a library package; route output through the reporter or an injected logger", name),
				})
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && (b.Name() == "print" || b.Name() == "println") {
					out = append(out, Finding{
						Pos:  call.Pos(),
						Rule: "printcheck",
						Msg:  fmt.Sprintf("builtin %s writes to stderr; it is a debugging aid, not a reporting channel", b.Name()),
					})
				}
			}
			return true
		})
	}
	return out
}

// logOutput lists the global-logger functions that produce output.
func logOutput(name string) bool {
	for _, prefix := range []string{"Print", "Fatal", "Panic"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}
