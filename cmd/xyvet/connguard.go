package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// runConnguard flags direct Read/Write calls on net.Conn values with no
// SetDeadline/SetReadDeadline/SetWriteDeadline call earlier in the same
// function. A conn without a deadline blocks forever on a silent peer —
// in a monitor that must keep crawling and matching while parts of the
// web misbehave, every unguarded conn call is a latent hang.
//
// Methods whose own receiver carries a SetDeadline method are exempt:
// conn wrappers (an injected-fault conn, a metered conn) forward Read and
// Write and inherit whatever deadline their caller set on the wrapper.
func runConnguard(pkg *Package) []Finding {
	iface := netConnInterface(pkg)
	if iface == nil {
		return nil // package graph never touches net
	}
	var out []Finding
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if connLikeReceiver(pkg, fd) {
				continue
			}
			out = append(out, connguardFunc(pkg, fd, iface)...)
		}
	}
	return out
}

// connguardFunc checks one function body: every conn Read/Write needs a
// deadline call lexically before it.
func connguardFunc(pkg *Package, fd *ast.FuncDecl, iface *types.Interface) []Finding {
	type connCall struct {
		pos  token.Pos
		name string
	}
	var deadlines []token.Pos
	var rws []connCall
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		t := pkg.Info.Types[sel.X].Type
		if !implementsConn(t, iface) {
			return true
		}
		switch sel.Sel.Name {
		case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
			deadlines = append(deadlines, call.Pos())
		case "Read", "Write":
			rws = append(rws, connCall{call.Pos(), sel.Sel.Name})
		}
		return true
	})
	var out []Finding
	for _, c := range rws {
		guarded := false
		for _, dp := range deadlines {
			if dp < c.pos {
				guarded = true
				break
			}
		}
		if !guarded {
			out = append(out, Finding{
				Pos:  c.pos,
				Rule: "connguard",
				Msg:  fmt.Sprintf("net.Conn %s with no deadline set earlier in this function; a silent peer blocks it forever", c.name),
			})
		}
	}
	return out
}

// netConnInterface resolves the net.Conn interface through the package's
// import graph, or nil when the graph never reaches net.
func netConnInterface(pkg *Package) *types.Interface {
	if pkg.Types == nil {
		return nil
	}
	seen := make(map[*types.Package]bool)
	var find func(p *types.Package) *types.Package
	find = func(p *types.Package) *types.Package {
		if p == nil || seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == "net" {
			return p
		}
		for _, imp := range p.Imports() {
			if r := find(imp); r != nil {
				return r
			}
		}
		return nil
	}
	netPkg := find(pkg.Types)
	if netPkg == nil {
		return nil
	}
	obj := netPkg.Scope().Lookup("Conn")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// implementsConn reports whether t (or *t) satisfies net.Conn.
func implementsConn(t types.Type, iface *types.Interface) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}

// connLikeReceiver reports whether fd is a method on a type that itself
// exposes SetDeadline — a conn or conn wrapper.
func connLikeReceiver(pkg *Package, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := pkg.Info.Types[fd.Recv.List[0].Type].Type
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, pkg.Types, "SetDeadline")
	_, isFunc := obj.(*types.Func)
	return isFunc
}
