package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// runConnguard flags Read/Write calls on net.Conn values with no
// deadline established earlier in the same function. A conn without a
// deadline blocks forever on a silent peer — in a monitor that must keep
// crawling and matching while parts of the web misbehave, every
// unguarded conn call is a latent hang.
//
// The rule is interprocedural through the engine's summaries: a call to
// a function that (transitively, through static calls) sets a deadline
// counts as a guard at its call position, so `c.prepare(conn); conn.Read(buf)`
// passes when prepare sets the deadline. Methods whose own receiver
// carries a SetDeadline method stay exempt: conn wrappers (an
// injected-fault conn, a metered conn) forward Read and Write and
// inherit whatever deadline their caller set on the wrapper.
func runConnguard(e *engine) []Finding {
	var out []Finding
	for _, n := range e.nodes {
		if !n.pkg.Analyzed || connLikeReceiver(n.pkg, n.decl) {
			continue
		}
		s := &n.sum
		guards := append([]token.Pos(nil), s.deadlineCalls...)
		for _, c := range s.calls {
			if c.kind != callStatic || len(c.targets) == 0 {
				continue
			}
			if c.targets[0].sum.deadline {
				guards = append(guards, c.pos)
			}
		}
		sort.Slice(guards, func(i, j int) bool { return guards[i] < guards[j] })
		for _, io := range s.rawIO {
			name, ok := strings.CutPrefix(io.what, "net.Conn.")
			if !ok {
				continue
			}
			guarded := false
			for _, gp := range guards {
				if gp < io.pos {
					guarded = true
					break
				}
			}
			if !guarded {
				out = append(out, Finding{
					Pos:  io.pos,
					Rule: "connguard",
					Msg:  fmt.Sprintf("net.Conn %s with no deadline set earlier in this function; a silent peer blocks it forever", name),
				})
			}
		}
	}
	return out
}

// connLikeReceiver reports whether fd is a method on a type that itself
// exposes SetDeadline — a conn or conn wrapper.
func connLikeReceiver(pkg *Package, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := pkg.Info.Types[fd.Recv.List[0].Type].Type
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, pkg.Types, "SetDeadline")
	_, isFunc := obj.(*types.Func)
	return isFunc
}
