package main

import (
	"fmt"
	"go/ast"
	"go/types"
)

// runErrdrop flags expression statements that discard the error result
// of an in-module call — a reporter delivery or warehouse write whose
// failure vanishes is exactly the missed-notification bug class the
// change-detection literature warns about. Writing `_ = f()` remains the
// explicit escape hatch, and `defer f()` keeps the conventional cleanup
// idiom. Standard-library calls are out of scope (go vet and convention
// govern those).
func runErrdrop(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(es.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pkg, call) {
				return true
			}
			obj := calleeObject(pkg, call)
			if !inModule(pkg, obj) {
				return true
			}
			out = append(out, Finding{
				Pos:  call.Pos(),
				Rule: "errdrop",
				Msg:  fmt.Sprintf("error result of %s is silently discarded; handle it or write `_ = ...` to drop it explicitly", callName(call)),
			})
			return true
		})
	}
	return out
}

// returnsError reports whether a call's results include an error.
func returnsError(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

// callName renders the callee for the diagnostic.
func callName(call *ast.CallExpr) string {
	return types.ExprString(ast.Unparen(call.Fun))
}
