package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// summary is the per-function fact sheet the interprocedural rules
// consume. The local fields come from one lexical walk of the body
// (summarize); the fixpoint fields are propagated over the call graph
// by engine.fixpoint.
type summary struct {
	// events are the lock acquisitions of the body, each with the set of
	// locks already held at that point (lexical critical-section regions,
	// same pairing discipline lockcheck enforces).
	events []lockEvent
	// calls are the body's call sites with their held-lock context.
	calls []callInfo
	// rawIO are direct net.Conn / *os.File / os.Rename operations.
	rawIO []ioSite

	// consults: the body consults a fault point (faults.Injector
	// Fire/Check, a wal.Hook invocation) or carries //xyvet:faultpoint;
	// extended transitively by the fixpoint.
	consults bool
	// entry: a fault-coverage root — an exported function of one of the
	// pipeline packages, or //xyvet:faultentry.
	entry bool
	// mayBlock is a witness that the body can definitely block while
	// running synchronously: a channel send/receive, a select with no
	// default, or a WaitGroup/Cond wait; extended through static calls by
	// the fixpoint. Plug points (callbacks, interface methods) are not
	// witnesses — lockcheck covers those lexically.
	mayBlock *blockFact
	// deadline: the body sets a conn deadline; extended transitively.
	deadline bool
	// deadlineCalls are the positions where a deadline is set directly or
	// a (possibly transitively) deadline-setting function is called —
	// connguard's interprocedural guard points.
	deadlineCalls []token.Pos

	// acquires maps every lock this function can take, directly or down
	// its call chain, to a witness path; acquireOrder keeps insertion
	// order for deterministic propagation.
	acquires     map[types.Object]*acqPath
	acquireOrder []types.Object
}

// lockEvent is one lock acquisition with its held-at-acquisition context.
type lockEvent struct {
	obj     types.Object // mutex identity (field or var object); nil when unresolvable
	display string       // e.g. "reporter.Reporter.mu"
	recv    string       // receiver expression text, e.g. "r.mu"
	pos     token.Pos
	held    []heldLock
	async   bool // inside a func literal / go / defer body
}

// heldLock is one lock known held at a program point.
type heldLock struct {
	obj     types.Object // nil for the *Locked-convention caller-held lock
	display string
	recv    string
	pos     token.Pos
	caller  bool // held by the caller per the *Locked naming convention
}

type callKind int

const (
	callStatic  callKind = iota // resolved concrete function or method
	callIface                   // interface method, targets = in-module implementations
	callDynamic                 // func value / callback; no targets
)

// callInfo is one call site with its context.
type callInfo struct {
	pos     token.Pos
	kind    callKind
	name    string // callee rendering for messages
	targets []*funcNode
	held    []heldLock
	async   bool
}

// ioSite is one raw I/O operation (faultcover's subject matter).
type ioSite struct {
	pos  token.Pos
	what string // "net.Conn.Read", "os.File.Write", "os.Rename", "net.Dial"
}

// blockFact is a may-block witness: either a direct blocking operation
// (next == nil) or a call into a function that may block.
type blockFact struct {
	pos  token.Pos
	why  string
	next *funcNode
}

// acqPath is a witness that a function (transitively) acquires a lock:
// the acquisition event, the function whose body contains it, and the
// call chain from the summarized function down to the owner.
type acqPath struct {
	event *lockEvent
	owner *funcNode
	via   []*funcNode
}

// entryPackages are the pipeline packages whose exported functions are
// faultcover roots; everything reachable from them must flow through an
// internal/faults point or a registered wrapper.
var entryPackages = []string{
	"internal/crawler",
	"internal/cluster",
	"internal/wal",
	"internal/warehouse",
	"internal/reporter",
	"internal/stream",
}

// summarize runs the local pass over one function body.
func summarize(e *engine, n *funcNode) {
	w := &sumWalker{e: e, n: n, pkg: n.pkg}
	s := &n.sum

	if n.pkg.Path == e.modpath+"/internal/faults" || n.directive("faultpoint") {
		s.consults = true
	}
	if n.directive("faultentry") {
		s.entry = true
	} else if ast.IsExported(n.decl.Name.Name) {
		for _, ep := range entryPackages {
			if n.pkg.Path == e.modpath+"/"+ep {
				s.entry = true
				break
			}
		}
	}

	var held []heldLock
	if strings.HasSuffix(n.decl.Name.Name, "Locked") {
		held = []heldLock{{
			display: "a caller-held lock (the *Locked convention)",
			recv:    "<caller>",
			pos:     n.decl.Pos(),
			caller:  true,
		}}
	}
	w.walkList(n.decl.Body.List, held, false)

	// Record every lock the body itself takes synchronously; the fixpoint
	// adds the ones taken down the call chain.
	for i := range s.events {
		ev := &s.events[i]
		if ev.async || ev.obj == nil {
			continue
		}
		if _, ok := s.acquires[ev.obj]; !ok {
			if s.acquires == nil {
				s.acquires = make(map[types.Object]*acqPath)
			}
			s.acquires[ev.obj] = &acqPath{event: ev, owner: n}
			s.acquireOrder = append(s.acquireOrder, ev.obj)
		}
	}
}

// sumWalker walks one function body tracking the held-lock context, the
// same lexical critical-section discipline lockcheck enforces: a lock
// statement paired with an immediate deferred unlock holds to the end of
// the statement list, one paired with an explicit unlock holds to the
// unlock.
type sumWalker struct {
	e   *engine
	n   *funcNode
	pkg *Package
}

func (w *sumWalker) walkList(list []ast.Stmt, held []heldLock, async bool) {
	i := 0
	for i < len(list) {
		stmt := list[i]
		lk, ok := w.lockAcquire(stmt)
		if !ok {
			w.walkStmt(stmt, held, async)
			i++
			continue
		}
		w.n.sum.events = append(w.n.sum.events, lockEvent{
			obj: lk.obj, display: lk.display, recv: lk.recv, pos: stmt.Pos(),
			held: snapshotHeld(held), async: async,
		})
		region, deferred := w.findRegion(list, i, lk)
		if region < 0 {
			// Unpaired (lockcheck reports it); scan on without the lock.
			w.walkStmt(stmt, held, async)
			i++
			continue
		}
		start := i + 1
		if deferred {
			start = i + 2
		}
		// The critical section is a statement list of its own (nested
		// lock pairs there need their regions found), walked with the new
		// lock held; the unlock statement and the tail of the list run
		// without it.
		inner := append(snapshotHeld(held), lk.held)
		w.walkList(list[start:region], inner, async)
		rest := region
		if !deferred && region < len(list) {
			rest = region + 1
		}
		if rest < len(list) {
			w.walkList(list[rest:], held, async)
		}
		return
	}
}

// acquired describes one recognized recv.Lock()/recv.RLock() statement.
type acquired struct {
	obj     types.Object
	display string
	recv    string
	kind    string // Lock or RLock
	held    heldLock
}

// lockAcquire recognises `recv.Lock()` / `recv.RLock()` statements on
// sync mutexes and resolves the mutex identity to a types.Object — the
// struct field or variable, so two acquisition sites of the same field
// are the same lock class no matter the instance.
func (w *sumWalker) lockAcquire(stmt ast.Stmt) (acquired, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return acquired{}, false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return acquired{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return acquired{}, false
	}
	kind := sel.Sel.Name
	if kind != "Lock" && kind != "RLock" {
		return acquired{}, false
	}
	if !w.isSyncMethod(sel) {
		return acquired{}, false
	}
	obj, display := w.resolveMutex(sel)
	recv := types.ExprString(sel.X)
	a := acquired{obj: obj, display: display, recv: recv, kind: kind}
	a.held = heldLock{obj: obj, display: display, recv: recv, pos: stmt.Pos()}
	return a, true
}

// isSyncMethod reports whether the selected method is declared by the
// sync package (including promoted embeds), with lockcheck's receiver
// naming fallback for partially checked packages.
func (w *sumWalker) isSyncMethod(sel *ast.SelectorExpr) bool {
	if s, ok := w.pkg.Info.Selections[sel]; ok {
		obj := s.Obj()
		return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
	}
	if t := w.pkg.Info.Types[sel.X].Type; t != nil {
		return typeIs(t, "sync.Mutex", "sync.RWMutex", "sync.Locker")
	}
	name := types.ExprString(sel.X)
	for _, suffix := range []string{"mu", "Mu", "mutex", "Mutex"} {
		if strings.HasSuffix(name, suffix) {
			return true
		}
	}
	return false
}

// resolveMutex maps the receiver of a Lock call to the identity object
// of the mutex: the struct field var for s.mu.Lock() (or an embedded
// sync.Mutex behind s.Lock()), the variable for mu.Lock(). Returns nil
// when no stable object exists (the event still participates in held
// tracking by receiver text).
func (w *sumWalker) resolveMutex(sel *ast.SelectorExpr) (types.Object, string) {
	info := w.pkg.Info
	// s.mu.Lock(): the mutex expr is itself a selector; its Sel resolves
	// to the field (or package-level var of another package).
	if mx, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
		if obj := info.Uses[mx.Sel]; obj != nil {
			if v, ok := obj.(*types.Var); ok {
				return v, w.displayFor(v, mx)
			}
		}
	}
	// mu.Lock() on a local or package-level var.
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			if v, ok := obj.(*types.Var); ok {
				return v, w.displayFor(v, nil)
			}
		}
	}
	// s.Lock() through an embedded sync.Mutex: the selection's index path
	// names the embedded field.
	if s, ok := info.Selections[sel]; ok && len(s.Index()) > 1 {
		t := deref(s.Recv())
		idx := s.Index()
		var field *types.Var
		for _, fi := range idx[:len(idx)-1] {
			st, ok := t.Underlying().(*types.Struct)
			if !ok {
				field = nil
				break
			}
			field = st.Field(fi)
			t = deref(field.Type())
		}
		if field != nil {
			return field, w.displayFor(field, nil)
		}
	}
	return nil, types.ExprString(sel.X)
}

// displayFor renders a lock object for messages: pkg.Type.field for
// struct fields (using the static receiver type when available),
// pkg.name for package-level vars, plain name for locals.
func (w *sumWalker) displayFor(v *types.Var, selExpr *ast.SelectorExpr) string {
	if v.IsField() {
		owner := ""
		if selExpr != nil {
			if t := w.pkg.Info.Types[selExpr.X].Type; t != nil {
				if named, ok := deref(t).(*types.Named); ok {
					owner = named.Obj().Pkg().Name() + "." + named.Obj().Name()
				}
			}
		}
		if owner == "" && v.Pkg() != nil {
			owner = v.Pkg().Name()
		}
		return owner + "." + v.Name()
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return v.Pkg().Name() + "." + v.Name()
	}
	return v.Name()
}

// findRegion locates the end of the critical section opened at list[i]:
// an immediate `defer recv.Unlock()` (region runs to the end of the
// list) or an explicit unlock later in the list. Returns -1 when
// unpaired.
func (w *sumWalker) findRegion(list []ast.Stmt, i int, lk acquired) (region int, deferred bool) {
	unlock := map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}[lk.kind]
	for j := i + 1; j < len(list); j++ {
		switch s := list[j].(type) {
		case *ast.DeferStmt:
			if j == i+1 && w.isMutexCall(s.Call, lk.recv, unlock) {
				return len(list), true
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && w.isMutexCall(call, lk.recv, unlock) {
				return j, false
			}
		}
	}
	return -1, false
}

func (w *sumWalker) isMutexCall(call *ast.CallExpr, recv, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	return w.isSyncMethod(sel) && types.ExprString(sel.X) == recv
}

// walkStmt dispatches one statement, keeping the held context for nested
// blocks and recording block/call/IO facts. Func literals and go/defer
// bodies run outside the lexical critical section: they restart with an
// empty held set and are marked async.
func (w *sumWalker) walkStmt(stmt ast.Stmt, held []heldLock, async bool) {
	switch x := stmt.(type) {
	case nil:
	case *ast.BlockStmt:
		w.walkList(x.List, held, async)
	case *ast.IfStmt:
		w.walkStmt(x.Init, held, async)
		w.walkExpr(x.Cond, held, async)
		w.walkList(x.Body.List, held, async)
		w.walkStmt(x.Else, held, async)
	case *ast.ForStmt:
		w.walkStmt(x.Init, held, async)
		w.walkExpr(x.Cond, held, async)
		w.walkStmt(x.Post, held, async)
		w.walkList(x.Body.List, held, async)
	case *ast.RangeStmt:
		w.walkExpr(x.X, held, async)
		w.walkList(x.Body.List, held, async)
	case *ast.SwitchStmt:
		w.walkStmt(x.Init, held, async)
		w.walkExpr(x.Tag, held, async)
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.walkExpr(e, held, async)
				}
				w.walkList(cc.Body, held, async)
			}
		}
	case *ast.TypeSwitchStmt:
		w.walkStmt(x.Init, held, async)
		w.walkStmt(x.Assign, held, async)
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkList(cc.Body, held, async)
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm == nil {
					hasDefault = true
				}
			}
		}
		if !hasDefault && !async {
			w.block(x.Pos(), "select with no default")
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				// The comm clause's channel operation belongs to the
				// select (already accounted above — a select with a
				// default never blocks), so its send/receive must not be
				// recorded as an unconditional block: walk it async.
				w.walkStmt(cc.Comm, held, true)
				w.walkList(cc.Body, held, async)
			}
		}
	case *ast.SendStmt:
		if !async {
			w.block(x.Pos(), "channel send")
		}
		w.walkExpr(x.Chan, held, async)
		w.walkExpr(x.Value, held, async)
	case *ast.GoStmt:
		w.asyncCall(x.Call, held, async)
	case *ast.DeferStmt:
		w.asyncCall(x.Call, held, async)
	case *ast.ExprStmt:
		w.walkExpr(x.X, held, async)
	case *ast.AssignStmt:
		for _, e := range x.Lhs {
			w.walkExpr(e, held, async)
		}
		for _, e := range x.Rhs {
			w.walkExpr(e, held, async)
		}
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			w.walkExpr(e, held, async)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(v, held, async)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(x.Stmt, held, async)
	case *ast.IncDecStmt:
		w.walkExpr(x.X, held, async)
	}
}

// asyncCall handles the call of a go or defer statement: the callee runs
// outside the lexical critical section (async, no held locks), while its
// arguments evaluate here and now.
func (w *sumWalker) asyncCall(call *ast.CallExpr, held []heldLock, async bool) {
	if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		w.walkList(fl.Body.List, nil, true)
	} else {
		w.walkCall(call, nil, true)
	}
	for _, a := range call.Args {
		w.walkExpr(a, held, async)
	}
}

// walkExpr records the facts of one expression tree: calls (with held
// context), channel receives, raw I/O, fault consultation, deadlines.
func (w *sumWalker) walkExpr(expr ast.Expr, held []heldLock, async bool) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			w.walkList(x.Body.List, nil, true)
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !async {
				w.block(x.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			w.walkCall(x, held, async)
		}
		return true
	})
}

// walkCall classifies one call site: records the callInfo with resolved
// targets, plus any blocking, consultation, deadline or raw-I/O fact the
// callee implies.
func (w *sumWalker) walkCall(call *ast.CallExpr, held []heldLock, async bool) {
	s := &w.n.sum
	info := w.pkg.Info
	pos := call.Pos()

	// Package-level functions: os.Rename and net dials are raw I/O.
	if name, ok := pkgFuncCall(w.pkg, call, "os"); ok {
		if name == "Rename" {
			s.rawIO = append(s.rawIO, ioSite{pos, "os.Rename"})
		}
		return
	}
	if name, ok := pkgFuncCall(w.pkg, call, "net"); ok {
		if name == "Dial" || name == "DialTimeout" {
			s.rawIO = append(s.rawIO, ioSite{pos, "net." + name})
		}
		return
	}

	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := info.Uses[fun]
		switch o := obj.(type) {
		case *types.Func:
			w.record(call, callStatic, fun.Name, w.e.byObj[o], held, async)
			return
		case *types.Var:
			// Function-value call: an unresolvable plug point, but NOT a
			// may-block witness — lockcheck already flags callbacks invoked
			// lexically inside a critical section, and treating every
			// callback as blocking would flood deeplock with clock and
			// codec hooks that never touch the scheduler.
			if isFuncValue(o.Type()) {
				w.record(call, callDynamic, fun.Name, nil, held, async)
			}
			return
		}
	case *ast.SelectorExpr:
		if selInfo, ok := info.Selections[fun]; ok {
			switch selInfo.Kind() {
			case types.FieldVal:
				if isFuncValue(selInfo.Type()) {
					w.fieldFuncCall(call, fun, selInfo, held, async)
				}
				return
			case types.MethodVal:
				w.methodCall(call, fun, selInfo, held, async)
				return
			}
			return
		}
		// Package-qualified: pkg.Func or pkg.Var.
		switch o := info.Uses[fun.Sel].(type) {
		case *types.Func:
			w.record(call, callStatic, types.ExprString(fun), w.e.byObj[o], held, async)
		case *types.Var:
			if isFuncValue(o.Type()) {
				w.record(call, callDynamic, types.ExprString(fun), nil, held, async)
			}
		}
	}
}

// fieldFuncCall handles x.f() where f is a func-typed field: a callback
// plug point unless the field's named type is a fault hook (wal.Hook),
// which counts as consulting a fault point instead.
func (w *sumWalker) fieldFuncCall(call *ast.CallExpr, fun *ast.SelectorExpr, selInfo *types.Selection, held []heldLock, async bool) {
	s := &w.n.sum
	if named, ok := selInfo.Type().(*types.Named); ok && w.isFaultHookType(named) {
		s.consults = true
	}
	w.record(call, callDynamic, types.ExprString(fun), nil, held, async)
}

// methodCall handles x.m(): interface dispatch resolves to in-module
// implementations; concrete methods resolve statically. Fault-injector
// consultation, conn deadlines, conn/file raw I/O and known blocking
// methods (WaitGroup.Wait, Cond.Wait) are recognized here.
func (w *sumWalker) methodCall(call *ast.CallExpr, fun *ast.SelectorExpr, selInfo *types.Selection, held []heldLock, async bool) {
	s := &w.n.sum
	pos := call.Pos()
	mname := fun.Sel.Name
	fnObj, _ := selInfo.Obj().(*types.Func)
	recv := deref(selInfo.Recv())

	// faults.Injector consultation.
	if fnObj != nil && fnObj.Pkg() != nil && fnObj.Pkg().Path() == w.e.modpath+"/internal/faults" &&
		(mname == "Fire" || mname == "Check") {
		s.consults = true
	}

	// sync blocking waits.
	if fnObj != nil && fnObj.Pkg() != nil && fnObj.Pkg().Path() == "sync" && mname == "Wait" && !async {
		w.block(pos, types.ExprString(fun)+" (sync wait)")
	}

	// Conn facts: deadline coverage and raw reads/writes.
	recvType := w.pkg.Info.Types[fun.X].Type
	if w.e.netConn != nil && recvType != nil && implementsIface(recvType, w.e.netConn) {
		switch mname {
		case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
			s.deadline = true
			s.deadlineCalls = append(s.deadlineCalls, pos)
		case "Read", "Write":
			s.rawIO = append(s.rawIO, ioSite{pos, "net.Conn." + mname})
		}
	}
	// *os.File raw I/O.
	if typeIs(recvType, "os.File") {
		switch mname {
		case "Read", "ReadAt", "Write", "WriteAt", "WriteString", "Sync", "Truncate":
			s.rawIO = append(s.rawIO, ioSite{pos, "os.File." + mname})
		}
	}

	if types.IsInterface(recv) {
		// Interface dispatch is a plug point (lockcheck flags it under a
		// lock, so it is not a may-block witness here); it still resolves
		// to the in-module method sets so lock acquisitions propagate
		// through it.
		var targets []*funcNode
		if iface, ok := recv.Underlying().(*types.Interface); ok {
			targets = w.e.implementers(iface, mname)
		}
		w.record(call, callIface, types.ExprString(fun), nil, held, async)
		if len(targets) > 0 {
			s.calls[len(s.calls)-1].targets = targets
		}
		return
	}
	if fnObj != nil {
		w.record(call, callStatic, types.ExprString(fun), w.e.byObj[fnObj], held, async)
	}
}

// record appends one callInfo (target may be nil for out-of-module
// callees).
func (w *sumWalker) record(call *ast.CallExpr, kind callKind, name string, target *funcNode, held []heldLock, async bool) {
	ci := callInfo{pos: call.Pos(), kind: kind, name: name, held: snapshotHeld(held), async: async}
	if target != nil {
		ci.targets = []*funcNode{target}
	}
	w.n.sum.calls = append(w.n.sum.calls, ci)
}

// block records the first direct may-block witness.
func (w *sumWalker) block(pos token.Pos, why string) {
	if w.n.sum.mayBlock == nil {
		w.n.sum.mayBlock = &blockFact{pos: pos, why: why}
	}
}

// isFaultHookType reports whether a named func type is a recognized
// fault hook — internal/wal.Hook, whose invocation marks the WAL's
// durability points.
func (w *sumWalker) isFaultHookType(named *types.Named) bool {
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == w.e.modpath+"/internal/wal" && obj.Name() == "Hook"
}

func implementsIface(t types.Type, iface *types.Interface) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}

func snapshotHeld(held []heldLock) []heldLock {
	if len(held) == 0 {
		return nil
	}
	out := make([]heldLock, len(held))
	copy(out, held)
	return out
}
