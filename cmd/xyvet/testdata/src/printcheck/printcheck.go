// Package printcheck exercises the library-output analyzer.
package printcheck

import (
	"fmt"
	"io"
	"log"
)

// Shout writes straight to the process's terminal and global logger.
func Shout(v int) {
	fmt.Println("value", v)   // want printcheck
	log.Printf("value %d", v) // want printcheck
	println("debug", v)       // want printcheck
}

// Report renders into an injected writer: the sanctioned path.
func Report(w io.Writer, v int) error {
	_, err := fmt.Fprintf(w, "value %d\n", v)
	return err
}

// Format builds a string without printing anything.
func Format(v int) string {
	return fmt.Sprintf("value %d", v)
}
