// Package atomicmix exercises the atomic/plain mixing analyzer: a field
// touched through sync/atomic anywhere in the module must never be read
// or written plainly outside its constructor.
package atomicmix

import "sync/atomic"

type Counter struct {
	n    uint64        // accessed via sync/atomic
	m    uint64        // plain field, never atomic
	safe atomic.Uint64 // typed atomic: mixing is impossible by construction
}

// NewCounter initialises plainly — the value has not escaped yet, so the
// owning constructor is exempt.
func NewCounter(start uint64) *Counter {
	c := &Counter{}
	c.n = start
	return c
}

// Inc is the atomic access that puts n in the atomic set.
func (c *Counter) Inc() {
	atomic.AddUint64(&c.n, 1)
}

// Bad reads n plainly: unsynchronized with Inc — a data race even
// though it "only reads".
func (c *Counter) Bad() uint64 {
	return c.n // want atomicmix
}

// BadWrite resets n plainly outside the constructor.
func (c *Counter) BadWrite() {
	c.n = 0 // want atomicmix
}

// Good uses the matching atomic load.
func (c *Counter) Good() uint64 {
	return atomic.LoadUint64(&c.n)
}

// Plain fields and typed atomics never mix by definition.
func (c *Counter) Other() uint64 {
	c.m++
	return c.safe.Load()
}
