// Package errdrop exercises the dropped-error analyzer.
package errdrop

import "os"

func save() error { return nil }

func flush() (int, error) { return 0, nil }

func report() int { return 0 }

func Use() {
	save()  // want errdrop
	flush() // want errdrop

	// The explicit escape hatch.
	_ = save()

	// No error result: nothing to drop.
	report()

	// Out-of-module call: go vet's territory, not ours.
	os.Remove("nonexistent")

	// Handled.
	if err := save(); err != nil {
		_ = err
	}

	// The conventional cleanup idiom stays allowed.
	defer save()
}
