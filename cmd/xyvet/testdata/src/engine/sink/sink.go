// Package sink is the other half of the cross-package engine fixture:
// Buffered satisfies store.Sink, so the engine resolves Store.Push's
// interface call here and closes the lock cycle through Flush.
package sink

import (
	"sync"

	"xymon/cmd/xyvet/testdata/src/engine/store"
)

type Buffered struct {
	mu  sync.Mutex
	st  *store.Store
	buf []int
}

// Drain is the store.Sink implementation Push reaches via interface
// dispatch; it takes Buffered.mu while Store.mu is already held.
func (b *Buffered) Drain(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf = append(b.buf, v)
}

// Flush takes Buffered.mu then calls back into the store, which takes
// Store.mu — the opposite nesting order from Push→Drain.
func (b *Buffered) Flush() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf = b.buf[:0]
	b.st.Reindex() // want lockorder
}
