// Package store is half of the cross-package engine fixture: its lock
// nests the sink's lock through an interface call that only the
// module-wide call graph can resolve.
package store

import "sync"

// Sink is the cross-package plug point; its only implementation lives in
// the sibling sink package.
type Sink interface {
	Drain(v int)
}

type Store struct {
	mu   sync.Mutex
	sink Sink
	n    int
}

// Push locks Store.mu, then calls the interface: the engine resolves the
// call to sink.Buffered.Drain, whose own lock makes this the first half
// of the deliberate cross-package lock cycle.
func (s *Store) Push(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	s.sink.Drain(v) // want lockcheck
}

// Reindex is what the sink calls back into while holding its lock — the
// other half of the cycle.
func (s *Store) Reindex() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n = 0
}

// park blocks; spin reaches it through mutual recursion, so the
// may-block fact only stabilises at the summary fixpoint.
func (s *Store) park(ch chan int, depth int) {
	if depth > 0 {
		s.spin(ch, depth-1)
		return
	}
	ch <- s.n
}

func (s *Store) spin(ch chan int, depth int) {
	if depth > 0 {
		s.park(ch, depth-1)
	}
}

// Publish holds the lock across the recursive chain down to the send.
func (s *Store) Publish(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.park(ch, 2) // want deeplock
}
