// Package connguard is the fixture for the connguard analyzer: direct
// net.Conn Read/Write calls must be preceded by a deadline call earlier
// in the function or inside one of its callees (the rule is
// interprocedural through function summaries); conn-wrapper methods are
// exempt.
package connguard

import (
	"io"
	"net"
	"time"
)

func unguardedRead(c net.Conn) ([]byte, error) {
	buf := make([]byte, 64)
	_, err := c.Read(buf) // want connguard
	return buf, err
}

func unguardedWrite(c *net.TCPConn) error {
	_, err := c.Write([]byte("x")) // want connguard
	return err
}

func guardedWrite(c net.Conn) error {
	if err := c.SetDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	_, err := c.Write([]byte("x")) // guarded: deadline set above
	return err
}

func guardedRead(c net.Conn) ([]byte, error) {
	if err := c.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		return nil, err
	}
	buf := make([]byte, 64)
	_, err := c.Read(buf) // guarded: read deadline set above
	return buf, err
}

func deadlineAfterRead(c net.Conn) error {
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err != nil { // want connguard
		return err
	}
	return c.SetDeadline(time.Time{}) // too late for the read above
}

// prepare sets the deadline on the caller's behalf; the summary marks it
// as a deadline-setting function.
func prepare(c net.Conn) error {
	return c.SetDeadline(time.Now().Add(time.Second))
}

func guardedViaCallee(c net.Conn) ([]byte, error) {
	if err := prepare(c); err != nil {
		return nil, err
	}
	buf := make([]byte, 64)
	_, err := c.Read(buf) // guarded: prepare set the deadline
	return buf, err
}

func calleeAfterRead(c net.Conn) error {
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err != nil { // want connguard
		return err
	}
	return prepare(c) // too late for the read above
}

func notAConn(w io.Writer) error {
	_, err := w.Write([]byte("x")) // io.Writer is not a conn
	return err
}

// meteredConn forwards to an embedded conn; its methods inherit whatever
// deadline the caller set on the wrapper, so they are exempt.
type meteredConn struct {
	net.Conn
	n int
}

func (m *meteredConn) Read(p []byte) (int, error) {
	n, err := m.Conn.Read(p) // exempt: receiver carries SetDeadline
	m.n += n
	return n, err
}

func (m *meteredConn) Write(p []byte) (int, error) {
	n, err := m.Conn.Write(p) // exempt: receiver carries SetDeadline
	m.n += n
	return n, err
}
