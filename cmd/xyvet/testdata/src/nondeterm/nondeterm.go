// Package nondeterm exercises the reproducibility analyzer.
package nondeterm

import (
	"math/rand"
	"time"
)

// Jitter draws from the global source: irreproducible run-to-run.
func Jitter() int {
	return rand.Intn(100) // want nondeterm
}

// Wait synchronises by lucky timing.
func Wait() {
	time.Sleep(10 * time.Millisecond) // want nondeterm
}

// Seeded uses an injected, explicitly seeded generator.
func Seeded(rng *rand.Rand) int {
	return rng.Intn(100)
}

// Build constructs the injected generator; constructors are allowed.
func Build(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Tick waits on a timer channel instead of sleeping.
func Tick(done chan struct{}) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	select {
	case <-t.C:
	case <-done:
	}
}
