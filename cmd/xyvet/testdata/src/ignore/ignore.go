// Package ignore exercises the //xyvet:ignore suppression comment.
package ignore

import "time"

// Suppressed shows both placements: the same line and the line above.
func Suppressed() {
	time.Sleep(time.Millisecond) //xyvet:ignore nondeterm same-line suppression
	//xyvet:ignore nondeterm line-above suppression
	time.Sleep(time.Millisecond)
}

// NotSuppressed shows that ignoring one rule does not silence another.
func NotSuppressed() {
	//xyvet:ignore printcheck wrong rule, the finding below survives
	time.Sleep(time.Millisecond) // want nondeterm
}
