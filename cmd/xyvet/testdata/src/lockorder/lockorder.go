// Package lockorder exercises the lock-ordering analyzer: inconsistent
// acquisition order across functions (a cycle in the module lock graph)
// and same-lock re-acquisition, against the legitimate patterns that
// must stay silent.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

var (
	a A
	b B
)

// TakeAB nests b.mu under a.mu — one direction of the cycle. The cycle
// is reported once, at the edge out of the first lock class.
func TakeAB() {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want lockorder
	defer b.mu.Unlock()
}

// TakeBA acquires in the opposite order, through a call: the callee's
// acquisition summary closes the cycle b → a.
func TakeBA() {
	b.mu.Lock()
	defer b.mu.Unlock()
	lockA()
}

func lockA() {
	a.mu.Lock()
	defer a.mu.Unlock()
}

// Reacquire takes the same lock through the same receiver while already
// holding it — a definite self-deadlock, not just an ordering hazard.
func Reacquire() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.mu.Lock() // want lockorder
	a.mu.Unlock()
}

// Nest locks two *instances* of the same class. The class-level graph
// cannot tell them apart, so same-class self-edges are deliberately not
// reported (instances may nest legitimately, e.g. parent/child).
func Nest(x, y *A) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock()
	defer y.mu.Unlock()
}

// Consistent repeats TakeAB's order elsewhere: same direction twice is
// a DAG, not a cycle — the pair above is what breaks it.
func Consistent() {
	a.mu.Lock()
	defer a.mu.Unlock()
	lockB()
}

func lockB() {
	b.mu.Lock()
	defer b.mu.Unlock()
}
