// Package main shows the command exemptions: goleak and printcheck do
// not apply to main packages, which own the process lifetime and its
// terminal. nondeterm still applies everywhere.
package main

import "fmt"

func main() {
	go spin()
	fmt.Println("commands own their stdout")
}

func spin() {
	for i := 0; ; i++ {
		_ = i
	}
}
