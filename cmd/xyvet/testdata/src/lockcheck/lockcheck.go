// Package lockcheck exercises the lock-discipline analyzer: unpaired
// locks, channel sends and callback invocations inside critical
// sections, and the *Locked caller-holds-the-lock convention.
package lockcheck

import "sync"

// Sink is an in-module plug-point interface, as Delivery or Journal are
// in the real tree.
type Sink interface {
	Emit(v int)
}

type Box struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	vals []int
	ch   chan int
	done chan struct{}
	cb   func(int)
	sink Sink
}

// Good is the canonical pattern: lock, defer unlock, short section.
func (b *Box) Good(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.vals = append(b.vals, v)
}

// GoodExplicit releases the lock before the send; the explicit unlock
// ends the critical section.
func (b *Box) GoodExplicit(v int) {
	b.mu.Lock()
	b.vals = append(b.vals, v)
	b.mu.Unlock()
	b.ch <- v
}

// Unpaired never releases the lock in the same statement list.
func (b *Box) Unpaired(v int) {
	b.mu.Lock() // want lockcheck
	b.vals = append(b.vals, v)
}

// SendUnderLock blocks the critical section when the channel is full.
func (b *Box) SendUnderLock(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- v // want lockcheck
}

// CallbackUnderLock invokes an injected function value while locked.
func (b *Box) CallbackUnderLock(v int) {
	b.rw.RLock()
	b.cb(v) // want lockcheck
	b.rw.RUnlock()
}

// InterfaceUnderLock calls an in-module interface method while locked.
func (b *Box) InterfaceUnderLock(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sink.Emit(v) // want lockcheck
}

// flushLocked runs with the caller's lock held, per the naming
// convention, so its body is a critical section too.
func (b *Box) flushLocked() {
	for _, v := range b.vals {
		b.ch <- v // want lockcheck
	}
	b.vals = nil
}

// LocalClosure calls a closure defined in the same function; that stays
// under the author's control and is fine while locked.
func (b *Box) LocalClosure(v int) {
	add := func(x int) { b.vals = append(b.vals, x) }
	b.mu.Lock()
	defer b.mu.Unlock()
	add(v)
}

// SpawnUnderLock starts a goroutine whose body sends; the send happens
// outside the lexical critical section and is fine.
func (b *Box) SpawnUnderLock(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		select {
		case b.ch <- v:
		case <-b.done:
		}
	}()
}
