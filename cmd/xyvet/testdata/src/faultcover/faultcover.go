// Package faultcover exercises the fault-coverage analyzer: raw I/O
// reachable from a pipeline entry point must flow through an
// internal/faults injection point or a wrapper registered with
// //xyvet:faultpoint. Fixture entry points are marked //xyvet:faultentry
// (in the real tree, every exported function of the pipeline packages is
// a root automatically).
package faultcover

import (
	"os"

	"xymon/internal/faults"
)

var inj = faults.New(1)

// Flush is an entry point whose write path never consults the injector:
// both raw operations in the helper below are unreachable by any chaos
// test.
//
//xyvet:faultentry
func Flush(f *os.File, data []byte) error {
	return writeRaw(f, data)
}

func writeRaw(f *os.File, data []byte) error {
	if _, err := f.Write(data); err != nil { // want faultcover
		return err
	}
	return f.Sync() // want faultcover
}

// Covered consults the injector first; everything below the consult is
// injectable, so the raw write is fine.
//
//xyvet:faultentry
func Covered(f *os.File, data []byte) error {
	if err := inj.Check(faults.PointCommit, "fixture"); err != nil {
		return err
	}
	_, err := f.Write(data)
	return err
}

// wrapped is a registered wrapper: the wiring guarantees faults are
// injected around it, so the walk does not descend into it.
//
//xyvet:faultpoint
func wrapped(f *os.File, data []byte) error {
	_, err := f.Write(data)
	return err
}

// ViaWrapper reaches raw I/O only through the registered wrapper.
//
//xyvet:faultentry
func ViaWrapper(f *os.File, data []byte) error {
	return wrapped(f, data)
}

// helper is NOT reachable from any entry point; its raw I/O is a
// non-finding even though nothing covers it.
func helper(f *os.File) error {
	return f.Sync()
}
