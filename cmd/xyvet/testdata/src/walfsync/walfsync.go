// Package walfsync is the fixture for the walfsync analyzer: an
// os.Rename installing a file created in the same function must be
// followed by a parent-directory sync, or a crash can undo the install.
package walfsync

import (
	"os"
	"path/filepath"
)

func installNoSync(dir string, data []byte) error {
	tmp := filepath.Join(dir, "state.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "state")) // want walfsync
}

func installCreateNoSync(dir string) error {
	f, err := os.Create(filepath.Join(dir, "out.tmp"))
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(filepath.Join(dir, "out.tmp"), filepath.Join(dir, "out")) // want walfsync
}

func installThenSyncDir(dir string, data []byte) error {
	tmp := filepath.Join(dir, "state.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "state")); err != nil {
		return err
	}
	return SyncDir(dir) // discharged: a SyncDir call after the rename
}

// SyncDir reopens the directory and fsyncs it, making the rename
// durable — the same shape (and name) as wal.SyncDir.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

func installThenDirSync(dir string, data []byte) error {
	tmp := filepath.Join(dir, "state.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "state")); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync() // discharged: parent-directory fsync after the rename
}

// fileSyncBeforeRenameOnly fsyncs the file's content but never the
// directory: the bytes are durable, the rename is not.
func fileSyncBeforeRenameOnly(dir string, data []byte) error {
	tmp := filepath.Join(dir, "state.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "state")) // want walfsync
}

// moveForeignFile renames a file it did not create: rotation and moving
// are the caller's durability concern, not this function's.
func moveForeignFile(oldPath, newPath string) error {
	return os.Rename(oldPath, newPath)
}
