// Package goleak exercises the goroutine-lifecycle analyzer.
package goleak

import (
	"context"
	"sync"
)

type Pool struct {
	wg   sync.WaitGroup
	done chan struct{}
	work chan int
}

// Leak launches a goroutine with nothing tying it to a lifecycle.
func Leak() {
	go func() { // want goleak
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

// LeakMethod resolves the launched method and finds no lifecycle there
// either.
func (p *Pool) LeakMethod() {
	go p.spin() // want goleak
}

func (p *Pool) spin() {
	for i := 0; ; i++ {
		_ = i
	}
}

// GoodContext is cancellable through the context.
func GoodContext(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// GoodWaitGroup is awaited through the pool's WaitGroup.
func (p *Pool) GoodWaitGroup() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
	}()
}

// GoodRange exits when the work channel is closed.
func (p *Pool) GoodRange() {
	go func() {
		for v := range p.work {
			_ = v
		}
	}()
}

// GoodSelect launches a declared method that waits on the done channel.
func (p *Pool) GoodSelect() {
	go p.loop()
}

func (p *Pool) loop() {
	for {
		select {
		case v := <-p.work:
			_ = v
		case <-p.done:
			return
		}
	}
}
