// Package deeplock exercises the interprocedural blocking-call analyzer:
// a call made while a lock is held, into a function that (possibly
// several static calls deep) performs a definite blocking operation.
package deeplock

import "sync"

type Q struct {
	mu sync.Mutex
	ch chan int
	wg sync.WaitGroup
	n  int
}

// send blocks outright: a bare channel send.
func (q *Q) send(v int) {
	q.ch <- v
}

// relay is one static hop above the blocking operation.
func (q *Q) relay(v int) {
	q.send(v)
}

// Bad reaches the channel send through two static calls while holding
// the mutex: every other goroutine contending for q.mu stalls until a
// receiver shows up.
func (q *Q) Bad(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.n++
	q.relay(v) // want deeplock
}

// BadWait calls into a WaitGroup wait under the lock.
func (q *Q) settle() {
	q.wg.Wait()
}

func (q *Q) BadWait() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.settle() // want deeplock
}

// Good releases the lock before the blocking call.
func (q *Q) Good(v int) {
	q.mu.Lock()
	q.n++
	q.mu.Unlock()
	q.relay(v)
}

// tryDrain never blocks: the select has a default.
func (q *Q) tryDrain() {
	select {
	case <-q.ch:
	default:
	}
}

// GoodTry calls a function that only polls — no blocking witness, no
// finding.
func (q *Q) GoodTry() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.tryDrain()
}
