// Package rawxml is the fixture for the rawxml analyzer: encoding/xml
// must not be imported outside internal/xmldom — the ingest path parses
// with the byte tokenizer, and a stray stdlib decoder would bring back
// the per-token allocations it removed.
package rawxml

import (
	"encoding/xml" // want rawxml
	"strings"
)

// Decode uses the forbidden decoder; the import is the finding, not the
// use, so one import is one finding however often it is used.
func Decode(src string) ([]xml.Token, error) {
	d := xml.NewDecoder(strings.NewReader(src))
	var toks []xml.Token
	for {
		tok, err := d.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return toks, nil
			}
			return nil, err
		}
		toks = append(toks, xml.CopyToken(tok))
	}
}
