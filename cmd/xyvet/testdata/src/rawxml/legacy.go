package rawxml

// A justified exception stays suppressible, as with every rule.
import xmlenc "encoding/xml" //xyvet:ignore rawxml legacy export format needs the streaming encoder

// Marshal keeps the suppressed import in use.
func Marshal(v any) ([]byte, error) {
	return xmlenc.Marshal(v)
}
