// Package hashcache is the fixture for the hashcache analyzer: direct
// hash/fnv constructors outside internal/xmldom allocate a hasher per
// call and bypass the cached structural hashing the diff layer compares
// with; callers should use xmldom.HashString/HashFold or the tree-level
// Node.Hash64 / Document.Hashes.
package hashcache

import (
	"hash/fnv"
)

func perCallHasher(url string) uint64 {
	h := fnv.New64a() // want hashcache
	h.Write([]byte(url))
	return h.Sum64()
}

func otherWidths(b []byte) uint32 {
	h := fnv.New32() // want hashcache
	h.Write(b)
	h2 := fnv.New128a() // want hashcache
	h2.Write(b)
	return h.Sum32()
}

// Hand-rolling a "streaming" structural hash over serialized fragments
// re-creates a hasher per element and cannot agree with the canonical
// subtree fold; xmldom.StreamHasher computes the real thing in one pass
// over the raw bytes, no DOM, no per-element hasher.
func streamingByHand(openTags [][]byte) uint64 {
	var acc uint64
	for _, t := range openTags {
		h := fnv.New64a() // want hashcache
		h.Write(t)
		acc = acc*31 ^ h.Sum64()
	}
	return acc
}

// A justified exception stays suppressible, as with every rule.
func interoperates(b []byte) uint64 {
	h := fnv.New64a() //xyvet:ignore hashcache wire format requires streaming fnv
	h.Write(b)
	return h.Sum64()
}
