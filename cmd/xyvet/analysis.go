package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Pos  token.Pos
	Rule string
	Msg  string
}

// Analyzer is one rule suite run over every loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Package) []Finding
}

// analyzers is the project suite, in reporting order.
var analyzers = []*Analyzer{
	{
		Name: "lockcheck",
		Doc:  "locks without a paired unlock, and channel sends or callback invocations under a held lock",
		Run:  runLockcheck,
	},
	{
		Name: "goleak",
		Doc:  "goroutines launched in library packages with no context, done channel or WaitGroup tie to their lifecycle",
		Run:  runGoleak,
	},
	{
		Name: "errdrop",
		Doc:  "discarded error results of in-module calls (use _ = f() to discard explicitly)",
		Run:  runErrdrop,
	},
	{
		Name: "nondeterm",
		Doc:  "global math/rand and time.Sleep in non-test code; both break reproducible runs",
		Run:  runNondeterm,
	},
	{
		Name: "connguard",
		Doc:  "net.Conn Read/Write reachable with no deadline set earlier in the function; a silent peer blocks them forever",
		Run:  runConnguard,
	},
	{
		Name: "walfsync",
		Doc:  "os.Rename of a file created in the same function with no parent-directory sync after it; a crash can undo the install",
		Run:  runWalfsync,
	},
	{
		Name: "printcheck",
		Doc:  "fmt.Print*/log output in library packages; output must flow through the reporter",
		Run:  runPrintcheck,
	},
	{
		Name: "hashcache",
		Doc:  "direct hash/fnv constructors outside internal/xmldom; use the cached xmldom hashing primitives",
		Run:  runHashcache,
	},
}

// analyze runs every analyzer over pkg, drops suppressed findings and
// returns the rest sorted by position.
func analyze(pkg *Package) []Finding {
	ignores := collectIgnores(pkg)
	var out []Finding
	for _, a := range analyzers {
		for _, f := range a.Run(pkg) {
			if f.Rule == "" {
				f.Rule = a.Name
			}
			if !ignores.suppressed(pkg.Fset.Position(f.Pos), f.Rule) {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(out[i].Pos), pkg.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// ignoreIndex records //xyvet:ignore comments by file and line.
type ignoreIndex map[string]map[int][]string

// collectIgnores scans every comment of the package for the suppression
// syntax `//xyvet:ignore rule[,rule...] [justification]`.
func collectIgnores(pkg *Package) ignoreIndex {
	idx := make(ignoreIndex)
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "xyvet:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				rules := strings.Split(fields[0], ",")
				pos := pkg.Fset.Position(c.Pos())
				if idx[pos.Filename] == nil {
					idx[pos.Filename] = make(map[int][]string)
				}
				idx[pos.Filename][pos.Line] = append(idx[pos.Filename][pos.Line], rules...)
			}
		}
	}
	return idx
}

// suppressed reports whether rule is ignored at pos: an ignore comment on
// the same line or on the line directly above covers it.
func (idx ignoreIndex) suppressed(pos token.Position, rule string) bool {
	lines := idx[pos.Filename]
	if lines == nil {
		return false
	}
	for _, l := range [2]int{pos.Line, pos.Line - 1} {
		for _, r := range lines[l] {
			if r == rule || r == "all" {
				return true
			}
		}
	}
	return false
}

// --- shared type helpers ---

// isMainPkg reports whether the package builds a command.
func isMainPkg(pkg *Package) bool {
	return pkg.Types != nil && pkg.Types.Name() == "main"
}

// inModule reports whether an object is declared inside this module.
func inModule(pkg *Package, obj types.Object) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == pkg.ModPath || strings.HasPrefix(p, pkg.ModPath+"/")
}

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// typeIs reports whether t (possibly behind a pointer) prints as one of
// the given fully qualified type names.
func typeIs(t types.Type, names ...string) bool {
	if t == nil {
		return false
	}
	s := deref(t).String()
	for _, n := range names {
		if s == n {
			return true
		}
	}
	return false
}

// pkgFuncCall reports whether call invokes a package-level function of
// the package with import path pkgPath, returning the function name.
func pkgFuncCall(pkg *Package, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// calleeObject resolves the object a call invokes: a declared function or
// method, a func-typed variable or field, or nil when unresolvable.
func calleeObject(pkg *Package, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			return sel.Obj()
		}
		return pkg.Info.Uses[fun.Sel]
	}
	return nil
}
