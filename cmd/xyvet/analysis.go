package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Pos  token.Pos
	Rule string
	Msg  string
}

// Analyzer is one rule suite. Per-package rules set Run and are invoked
// once per analyzed package; interprocedural rules set RunEngine and are
// invoked once over the module-wide call-graph engine.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Package) []Finding
	RunEngine func(*engine) []Finding
}

// analyzers is the project suite, in reporting order.
var analyzers = []*Analyzer{
	{
		Name: "lockcheck",
		Doc:  "locks without a paired unlock, and channel sends or callback invocations under a held lock",
		Run:  runLockcheck,
	},
	{
		Name:      "deeplock",
		Doc:       "interprocedural lockcheck: calls, while a lock is held, of functions that may block or send somewhere down their call chain",
		RunEngine: runDeeplock,
	},
	{
		Name:      "lockorder",
		Doc:       "cycles in the module-wide lock-acquisition order graph — potential deadlocks — with the full acquisition path",
		RunEngine: runLockorder,
	},
	{
		Name: "goleak",
		Doc:  "goroutines launched in library packages with no context, done channel or WaitGroup tie to their lifecycle",
		Run:  runGoleak,
	},
	{
		Name: "errdrop",
		Doc:  "discarded error results of in-module calls (use _ = f() to discard explicitly)",
		Run:  runErrdrop,
	},
	{
		Name: "nondeterm",
		Doc:  "global math/rand and time.Sleep in non-test code; both break reproducible runs",
		Run:  runNondeterm,
	},
	{
		Name:      "connguard",
		Doc:       "net.Conn Read/Write reachable with no deadline set earlier in the function or its callees; a silent peer blocks them forever",
		RunEngine: runConnguard,
	},
	{
		Name:      "faultcover",
		Doc:       "raw net.Conn/os.File/os.Rename I/O reachable from pipeline entry points without passing an internal/faults point or registered wrapper",
		RunEngine: runFaultcover,
	},
	{
		Name:      "atomicmix",
		Doc:       "fields accessed through sync/atomic somewhere but read or written plainly elsewhere (outside the owning constructor)",
		RunEngine: runAtomicmix,
	},
	{
		Name: "walfsync",
		Doc:  "os.Rename of a file created in the same function with no parent-directory sync after it; a crash can undo the install",
		Run:  runWalfsync,
	},
	{
		Name: "printcheck",
		Doc:  "fmt.Print*/log output in library packages; output must flow through the reporter",
		Run:  runPrintcheck,
	},
	{
		Name: "hashcache",
		Doc:  "direct hash/fnv constructors outside internal/xmldom; use the cached xmldom hashing primitives",
		Run:  runHashcache,
	},
	{
		Name: "rawxml",
		Doc:  "encoding/xml imports outside internal/xmldom; the zero-copy ingest path must stay on the byte tokenizer",
		Run:  runRawxml,
	},
}

// ruleTiming accumulates per-rule wall time (cumulative across workers)
// plus the load and engine-build phases, for -v reporting.
type ruleTiming struct {
	mu sync.Mutex
	d  map[string]time.Duration
}

func (t *ruleTiming) add(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.d == nil {
		t.d = make(map[string]time.Duration)
	}
	t.d[name] += d
	t.mu.Unlock()
}

func (t *ruleTiming) snapshot() []struct {
	Name string
	D    time.Duration
} {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]struct {
		Name string
		D    time.Duration
	}, 0, len(t.d))
	for n, d := range t.d {
		out = append(out, struct {
			Name string
			D    time.Duration
		}{n, d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].D > out[j].D })
	return out
}

// analyzeAll builds the interprocedural engine over every loaded package,
// fans the per-package analyzers out across GOMAXPROCS workers, runs the
// engine analyzers, applies //xyvet:ignore suppressions, drops findings
// landing outside the analyzed package set and returns the rest sorted
// by position.
func analyzeAll(pkgs []*Package, timing *ruleTiming) []Finding {
	if len(pkgs) == 0 {
		return nil
	}
	fset := pkgs[0].Fset

	t0 := time.Now()
	eng := buildEngine(pkgs)
	timing.add("(engine build)", time.Since(t0))

	var analyzed []*Package
	analyzedDir := make(map[string]bool)
	for _, p := range pkgs {
		if p.Analyzed {
			analyzed = append(analyzed, p)
			analyzedDir[p.Dir] = true
		}
	}

	// One task per (package, per-package analyzer) plus one per engine
	// analyzer, drained by a worker pool.
	type task func() []Finding
	var tasks []task
	for _, a := range analyzers {
		a := a
		if a.Run != nil {
			for _, p := range analyzed {
				p := p
				tasks = append(tasks, func() []Finding {
					t := time.Now()
					fs := a.Run(p)
					timing.add(a.Name, time.Since(t))
					for i := range fs {
						if fs[i].Rule == "" {
							fs[i].Rule = a.Name
						}
					}
					return fs
				})
			}
		}
		if a.RunEngine != nil {
			tasks = append(tasks, func() []Finding {
				t := time.Now()
				fs := a.RunEngine(eng)
				timing.add(a.Name, time.Since(t))
				for i := range fs {
					if fs[i].Rule == "" {
						fs[i].Rule = a.Name
					}
				}
				return fs
			})
		}
	}

	results := make([][]Finding, len(tasks))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = tasks[i]()
			}
		}()
	}
	for i := range tasks {
		next <- i
	}
	close(next)
	wg.Wait()

	ignores := make(ignoreIndex)
	for _, p := range pkgs {
		collectIgnores(p, ignores)
	}
	var out []Finding
	for _, fs := range results {
		for _, f := range fs {
			pos := fset.Position(f.Pos)
			if !analyzedDir[dirOf(pos.Filename)] {
				continue
			}
			if ignores.suppressed(pos, f.Rule) {
				continue
			}
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].Msg < out[j].Msg
	})
	return out
}

// dirOf is filepath.Dir without the import.
func dirOf(name string) string {
	if i := strings.LastIndexByte(name, '/'); i > 0 {
		return name[:i]
	}
	return name
}

// ignoreIndex records //xyvet:ignore comments by file and line.
type ignoreIndex map[string]map[int][]string

// collectIgnores scans every comment of the package for the suppression
// syntax `//xyvet:ignore rule[,rule...] [justification]` into idx.
func collectIgnores(pkg *Package, idx ignoreIndex) {
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "xyvet:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				rules := strings.Split(fields[0], ",")
				pos := pkg.Fset.Position(c.Pos())
				if idx[pos.Filename] == nil {
					idx[pos.Filename] = make(map[int][]string)
				}
				idx[pos.Filename][pos.Line] = append(idx[pos.Filename][pos.Line], rules...)
			}
		}
	}
}

// suppressed reports whether rule is ignored at pos: an ignore comment on
// the same line or on the line directly above covers it.
func (idx ignoreIndex) suppressed(pos token.Position, rule string) bool {
	lines := idx[pos.Filename]
	if lines == nil {
		return false
	}
	for _, l := range [2]int{pos.Line, pos.Line - 1} {
		for _, r := range lines[l] {
			if r == rule || r == "all" {
				return true
			}
		}
	}
	return false
}

// --- shared type helpers ---

// isMainPkg reports whether the package builds a command.
func isMainPkg(pkg *Package) bool {
	return pkg.Types != nil && pkg.Types.Name() == "main"
}

// inModule reports whether an object is declared inside this module.
func inModule(pkg *Package, obj types.Object) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == pkg.ModPath || strings.HasPrefix(p, pkg.ModPath+"/")
}

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// typeIs reports whether t (possibly behind a pointer) prints as one of
// the given fully qualified type names.
func typeIs(t types.Type, names ...string) bool {
	if t == nil {
		return false
	}
	s := deref(t).String()
	for _, n := range names {
		if s == n {
			return true
		}
	}
	return false
}

// pkgFuncCall reports whether call invokes a package-level function of
// the package with import path pkgPath, returning the function name.
func pkgFuncCall(pkg *Package, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// calleeObject resolves the object a call invokes: a declared function or
// method, a func-typed variable or field, or nil when unresolvable.
func calleeObject(pkg *Package, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			return sel.Obj()
		}
		return pkg.Info.Uses[fun.Sel]
	}
	return nil
}
