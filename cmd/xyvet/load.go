package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	Path    string // import path, e.g. xymon/internal/core
	Dir     string // absolute directory
	ModPath string // module path
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// Analyzed marks packages the user asked to vet; dependency packages
	// are loaded (the interprocedural engine spans them) but findings are
	// only reported for analyzed ones.
	Analyzed bool
	// Imports lists the in-module import paths of the package's files.
	Imports []string
	// TypeErrors collects type-checker diagnostics. Analysis still runs
	// with whatever information was recovered.
	TypeErrors []error
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modpath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// expandPatterns resolves package patterns to absolute directories.
// A pattern is a directory (./internal/core), or a subtree walk
// (./..., ./cmd/...). Walks skip hidden directories and testdata unless
// the pattern itself points into testdata (so fixture packages can be
// vetted explicitly).
func expandPatterns(root, cwd string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, pat := range patterns {
		walk := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			walk = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(cwd, base)
		}
		base = filepath.Clean(base)
		if rel, err := filepath.Rel(root, base); err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			return nil, fmt.Errorf("pattern %s is outside module %s", pat, root)
		}
		if !walk {
			if hasGoFiles(base) {
				add(base)
			} else {
				return nil, fmt.Errorf("no Go files in %s", base)
			}
			continue
		}
		inTestdata := strings.Contains(base, string(filepath.Separator)+"testdata")
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if name == "testdata" && !inTestdata {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true
		}
	}
	return false
}

// isSourceFile reports whether name is a non-test Go source file.
func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// loader parses and type-checks module packages, resolving in-module
// imports from source and everything else through the standard library's
// source importer — no toolchain export data or third-party loader needed.
//
// Loading is parallel: every package of the requested set plus its
// in-module dependency closure is parsed concurrently, then type-checked
// in dependency order across a GOMAXPROCS worker pool (go/types permits
// concurrent checking of distinct packages as long as their imports are
// complete). The standard-library source importer is not concurrency-safe
// and is serialized behind its own mutex; module-package checking and the
// analyzers fan out around it.
type loader struct {
	fset    *token.FileSet
	root    string
	modpath string

	stdMu sync.Mutex
	std   types.Importer

	mu   sync.Mutex
	pkgs map[string]*Package // by import path; nil entry = no buildable files
	errs map[string]error    // parse/read failures, surfaced at import time
}

func newLoader(root, modpath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		root:    root,
		modpath: modpath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		errs:    make(map[string]error),
	}
}

// pathForDir maps an absolute module directory to its import path.
func (l *loader) pathForDir(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modpath, nil
	}
	return l.modpath + "/" + filepath.ToSlash(rel), nil
}

// dirForPath maps an in-module import path to its absolute directory.
func (l *loader) dirForPath(path string) string {
	if path == l.modpath {
		return l.root
	}
	return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.modpath+"/")))
}

func (l *loader) inModule(path string) bool {
	return path == l.modpath || strings.HasPrefix(path, l.modpath+"/")
}

// loadDir loads the package in a single absolute directory (plus its
// dependency closure) and returns it.
func (l *loader) loadDir(dir string) (*Package, error) {
	pkgs, err := l.loadAll([]string{dir})
	if err != nil {
		return nil, err
	}
	for _, p := range pkgs {
		if p.Dir == filepath.Clean(dir) {
			return p, nil
		}
	}
	return nil, nil // no buildable Go files
}

// loadAll parses and type-checks the packages in the given directories
// and their in-module dependency closure, returning the requested
// packages (marked Analyzed) and the dependencies, sorted by import
// path. Directories already loaded by a previous call are reused.
func (l *loader) loadAll(dirs []string) ([]*Package, error) {
	want := make(map[string]bool, len(dirs))
	var paths []string
	for _, d := range dirs {
		p, err := l.pathForDir(filepath.Clean(d))
		if err != nil {
			return nil, err
		}
		if !want[p] {
			want[p] = true
			paths = append(paths, p)
		}
	}

	parsed, err := l.parseClosure(paths, want)
	if err != nil {
		return nil, err
	}
	l.checkParallel(parsed)

	l.mu.Lock()
	defer l.mu.Unlock()
	var out []*Package
	for path, pkg := range l.pkgs {
		if pkg == nil {
			continue
		}
		if want[path] {
			pkg.Analyzed = true
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	// A requested directory with no buildable files is not an error (it
	// simply contributes nothing), matching the old per-dir loader; but a
	// requested directory that failed to read or parse is.
	for _, p := range paths {
		if err := l.errs[p]; err != nil {
			return out, err
		}
	}
	return out, nil
}

// parseClosure parses the requested import paths and, breadth-first,
// every in-module import reachable from them, fanning each wave out
// across goroutines. It returns the newly parsed packages (not yet
// type-checked).
func (l *loader) parseClosure(paths []string, requested map[string]bool) ([]*Package, error) {
	var (
		newPkgs []*Package
		pending []string
	)
	enqueued := make(map[string]bool)
	l.mu.Lock()
	for _, p := range paths {
		if _, done := l.pkgs[p]; !done && !enqueued[p] {
			enqueued[p] = true
			pending = append(pending, p)
		}
	}
	l.mu.Unlock()

	type result struct {
		path string
		pkg  *Package // nil: no buildable files
		err  error
	}
	for len(pending) > 0 {
		results := make([]result, len(pending))
		var wg sync.WaitGroup
		for i, path := range pending {
			wg.Add(1)
			go func(i int, path string) {
				defer wg.Done()
				pkg, err := l.parseDir(path)
				results[i] = result{path, pkg, err}
			}(i, path)
		}
		wg.Wait()

		pending = pending[:0]
		for _, r := range results {
			l.mu.Lock()
			if r.err != nil {
				l.pkgs[r.path] = nil
				l.errs[r.path] = r.err
				l.mu.Unlock()
				if requested[r.path] {
					return nil, fmt.Errorf("loading %s: %w", r.path, r.err)
				}
				continue
			}
			l.pkgs[r.path] = r.pkg
			l.mu.Unlock()
			if r.pkg == nil {
				continue
			}
			newPkgs = append(newPkgs, r.pkg)
			for _, imp := range r.pkg.Imports {
				l.mu.Lock()
				_, done := l.pkgs[imp]
				l.mu.Unlock()
				if !done && !enqueued[imp] {
					enqueued[imp] = true
					pending = append(pending, imp)
				}
			}
		}
		sort.Strings(pending)
	}
	sort.Slice(newPkgs, func(i, j int) bool { return newPkgs[i].Path < newPkgs[j].Path })
	return newPkgs, nil
}

// parseDir parses every non-test source file of one package directory.
func (l *loader) parseDir(path string) (*Package, error) {
	dir := l.dirForPath(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	impSet := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && l.inModule(p) {
				impSet[p] = true
			}
		}
	}
	if len(files) == 0 {
		return nil, nil
	}
	var imports []string
	for p := range impSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)
	return &Package{
		Path:    path,
		Dir:     dir,
		ModPath: l.modpath,
		Fset:    l.fset,
		Files:   files,
		Imports: imports,
	}, nil
}

// checkParallel type-checks the parsed packages in dependency order:
// Kahn's algorithm yields ready packages, a worker pool checks them
// concurrently, and completion unblocks dependents. Packages caught in
// an import cycle (which cannot build anyway) are checked last, in
// path order, with their unresolved imports surfacing as type errors.
func (l *loader) checkParallel(pkgs []*Package) {
	if len(pkgs) == 0 {
		return
	}
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	inCycle := kahnLeftover(pkgs, byPath)
	cyclic := make(map[string]bool, len(inCycle))
	for _, p := range inCycle {
		cyclic[p] = true
	}

	indeg := make(map[string]int, len(pkgs))
	dependents := make(map[string][]string)
	schedulable := 0
	for _, p := range pkgs {
		if cyclic[p.Path] {
			continue
		}
		schedulable++
		for _, imp := range p.Imports {
			if _, isNew := byPath[imp]; isNew && !cyclic[imp] {
				indeg[p.Path]++
				dependents[imp] = append(dependents[imp], p.Path)
			}
		}
	}

	queue := make(chan string, len(pkgs))
	var ready []string
	for _, p := range pkgs {
		if !cyclic[p.Path] && indeg[p.Path] == 0 {
			ready = append(ready, p.Path)
		}
	}
	sort.Strings(ready)
	for _, p := range ready {
		queue <- p
	}
	if schedulable == 0 {
		close(queue)
	}

	var (
		mu      sync.Mutex
		checked int
		wg      sync.WaitGroup
	)
	finish := func(path string) {
		mu.Lock()
		checked++
		var unlocked []string
		for _, dep := range dependents[path] {
			indeg[dep]--
			if indeg[dep] == 0 {
				unlocked = append(unlocked, dep)
			}
		}
		done := checked == schedulable
		mu.Unlock()
		// The queue's buffer holds every package, so these sends cannot
		// block — but they stay outside the critical section regardless.
		for _, dep := range unlocked {
			queue <- dep
		}
		if done {
			close(queue)
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for path := range queue {
				l.check(byPath[path])
				finish(path)
			}
		}()
	}
	wg.Wait()

	// Every acyclic package is checked; cycle members (and their
	// downstream) get a serial pass whose unresolved imports report the
	// cycle as type errors — matching the old loader's behavior.
	for _, path := range inCycle {
		l.check(byPath[path])
	}
}

// kahnLeftover returns, in path order, the packages that topological
// sorting can never schedule — the members (and downstream) of import
// cycles within the new-package set.
func kahnLeftover(pkgs []*Package, byPath map[string]*Package) []string {
	indeg := make(map[string]int, len(pkgs))
	dependents := make(map[string][]string)
	for _, p := range pkgs {
		for _, imp := range p.Imports {
			if _, ok := byPath[imp]; ok {
				indeg[p.Path]++
				dependents[imp] = append(dependents[imp], p.Path)
			}
		}
	}
	var ready []string
	for _, p := range pkgs {
		if indeg[p.Path] == 0 {
			ready = append(ready, p.Path)
		}
	}
	scheduled := 0
	for len(ready) > 0 {
		path := ready[0]
		ready = ready[1:]
		scheduled++
		for _, dep := range dependents[path] {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready = append(ready, dep)
			}
		}
	}
	if scheduled == len(pkgs) {
		return nil
	}
	var left []string
	for _, p := range pkgs {
		if indeg[p.Path] > 0 {
			left = append(left, p.Path)
		}
	}
	sort.Strings(left)
	return left
}

// check type-checks one parsed package. Its in-module imports must
// already be checked (or be cycle members, which then error cleanly).
func (l *loader) check(pkg *Package) {
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: &pkgImporter{l: l, from: pkg.Path},
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(pkg.Path, l.fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
}

// pkgImporter resolves imports during one package's type-check:
// in-module paths from the loader's checked-package map, everything
// else through the shared (mutex-guarded) source importer.
type pkgImporter struct {
	l    *loader
	from string
}

func (pi *pkgImporter) Import(path string) (*types.Package, error) {
	l := pi.l
	if l.inModule(path) {
		l.mu.Lock()
		pkg, ok := l.pkgs[path]
		err := l.errs[path]
		l.mu.Unlock()
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		if pkg == nil {
			return nil, fmt.Errorf("no Go files in %s", path)
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return pkg.Types, nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}

// relPath renders an absolute filename relative to base when possible.
func relPath(base, name string) string {
	if rel, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}
