package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	Path    string // import path, e.g. xymon/internal/core
	Dir     string // absolute directory
	ModPath string // module path
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// TypeErrors collects type-checker diagnostics. Analysis still runs
	// with whatever information was recovered.
	TypeErrors []error
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modpath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// expandPatterns resolves package patterns to absolute directories.
// A pattern is a directory (./internal/core), or a subtree walk
// (./..., ./cmd/...). Walks skip hidden directories and testdata unless
// the pattern itself points into testdata (so fixture packages can be
// vetted explicitly).
func expandPatterns(root, cwd string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, pat := range patterns {
		walk := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			walk = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(cwd, base)
		}
		base = filepath.Clean(base)
		if rel, err := filepath.Rel(root, base); err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			return nil, fmt.Errorf("pattern %s is outside module %s", pat, root)
		}
		if !walk {
			if hasGoFiles(base) {
				add(base)
			} else {
				return nil, fmt.Errorf("no Go files in %s", base)
			}
			continue
		}
		inTestdata := strings.Contains(base, string(filepath.Separator)+"testdata")
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if name == "testdata" && !inTestdata {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true
		}
	}
	return false
}

// isSourceFile reports whether name is a non-test Go source file.
func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// loader parses and type-checks module packages, resolving in-module
// imports from source and everything else through the standard library's
// source importer — no toolchain export data or third-party loader needed.
type loader struct {
	fset    *token.FileSet
	root    string
	modpath string
	std     types.Importer
	pkgs    map[string]*Package // by import path
	loading map[string]bool
}

func newLoader(root, modpath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		root:    root,
		modpath: modpath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer over the module + standard library.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modpath || strings.HasPrefix(path, l.modpath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// loadDir loads the package in an absolute directory.
func (l *loader) loadDir(dir string) (*Package, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return nil, err
	}
	path := l.modpath
	if rel != "." {
		path = l.modpath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path)
}

// load parses and type-checks the package with the given in-module
// import path, caching the result.
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.root
	if path != l.modpath {
		dir = filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.modpath+"/")))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		l.pkgs[path] = nil
		return nil, nil
	}

	pkg := &Package{
		Path:    path,
		Dir:     dir,
		ModPath: l.modpath,
		Fset:    l.fset,
		Files:   files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, pkg.Info)
	pkg.Types = tpkg
	if err != nil && tpkg == nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// relPath renders an absolute filename relative to base when possible.
func relPath(base, name string) string {
	if rel, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}
