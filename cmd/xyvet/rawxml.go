package main

import (
	"strconv"
	"strings"
)

// runRawxml flags encoding/xml imports outside internal/xmldom. The
// ingest hot path parses with the hand-rolled byte tokenizer
// (xmldom.ParseBytes) and screens documents with the streaming
// pre-filter before any DOM exists; an encoding/xml decoder smuggled
// into another package would reintroduce exactly the per-token
// allocations that path removed, invisibly to the benchmarks that only
// watch xmldom. Serialisation helpers are exported too
// (Node.WriteXML, xmldom.AppendEscaped), so no other package has a
// legitimate need for the stdlib decoder.
//
// internal/xmldom is exempt: it owns the legacy Parse used as the
// differential-fuzz reference, and its tests pin the tokenizer to the
// stdlib decoder's accept/reject behaviour.
func runRawxml(pkg *Package) []Finding {
	if strings.HasSuffix(pkg.Path, "/internal/xmldom") {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path != "encoding/xml" {
				continue
			}
			out = append(out, Finding{
				Pos:  imp.Pos(),
				Rule: "rawxml",
				Msg:  "import of encoding/xml outside internal/xmldom; use xmldom.ParseBytes / Node.WriteXML / AppendEscaped so the zero-copy ingest path cannot silently regress",
			})
		}
	}
	return out
}
