package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// wantKey identifies one expected finding in a fixture file.
type wantKey struct {
	file string // base name
	line int
	rule string
}

// collectWants gathers the `// want rule[ rule...]` annotations of a
// loaded fixture package, keyed by (file, line, rule) with counts.
func collectWants(pkg *Package, wants map[wantKey]int) {
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, rule := range strings.Fields(rest) {
					wants[wantKey{filepath.Base(pos.Filename), pos.Line, rule}]++
				}
			}
		}
	}
}

func fixtureRoot(t *testing.T) (root, modpath, fixtures string) {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, modpath, err = findModule(cwd)
	if err != nil {
		t.Fatal(err)
	}
	return root, modpath, filepath.Join(cwd, "testdata", "src")
}

// TestFixtures runs the full analyzer suite over every fixture subtree
// and requires the finding set to match the `// want` annotations
// exactly — each analyzer has positive and negative cases there. Each
// fixture gets a fresh loader so the engine's call graph covers exactly
// that fixture plus its dependency closure.
func TestFixtures(t *testing.T) {
	root, modpath, fixtures := fixtureRoot(t)
	entries, err := os.ReadDir(fixtures)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			dirs, err := expandPatterns(root, root, []string{"./cmd/xyvet/testdata/src/" + e.Name() + "/..."})
			if err != nil {
				t.Fatal(err)
			}
			ld := newLoader(root, modpath)
			pkgs, err := ld.loadAll(dirs)
			if err != nil {
				t.Fatal(err)
			}
			wants := make(map[wantKey]int)
			analyzed := 0
			for _, pkg := range pkgs {
				if !pkg.Analyzed {
					continue
				}
				analyzed++
				for _, terr := range pkg.TypeErrors {
					t.Errorf("type error: %v", terr)
				}
				collectWants(pkg, wants)
			}
			if analyzed == 0 {
				t.Fatal("fixture has no Go files")
			}
			total += len(wants)
			got := make(map[wantKey]int)
			for _, f := range analyzeAll(pkgs, nil) {
				pos := ld.fset.Position(f.Pos)
				got[wantKey{filepath.Base(pos.Filename), pos.Line, f.Rule}]++
			}
			var keys []wantKey
			for k := range wants {
				keys = append(keys, k)
			}
			for k := range got {
				if _, ok := wants[k]; !ok {
					keys = append(keys, k)
				}
			}
			sort.Slice(keys, func(i, j int) bool {
				a, b := keys[i], keys[j]
				if a.file != b.file {
					return a.file < b.file
				}
				if a.line != b.line {
					return a.line < b.line
				}
				return a.rule < b.rule
			})
			for _, k := range keys {
				if got[k] != wants[k] {
					t.Errorf("%s:%d [%s]: got %d findings, want %d", k.file, k.line, k.rule, got[k], wants[k])
				}
			}
		})
	}
	if total == 0 {
		t.Fatal("no want annotations found in any fixture")
	}
}

// TestEngineGolden pins the full CLI output over the engine fixture — a
// two-package module slice whose deliberate lock cycle is only visible
// once interface calls are resolved across package boundaries and the
// summaries reach their fixpoint. The golden file catches any drift in
// call-graph construction, witness selection or message rendering.
func TestEngineGolden(t *testing.T) {
	root, _, _ := fixtureRoot(t)
	var buf bytes.Buffer
	n, err := run(&buf, root, []string{"./cmd/xyvet/testdata/src/engine/..."}, options{})
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "engine.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("engine fixture output drifted from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
	if wantN := strings.Count(string(want), "\n"); n != wantN {
		t.Errorf("run reported %d findings, golden has %d lines", n, wantN)
	}
}

// TestFixturesExitNonZero mirrors the CLI contract: vetting the seeded
// fixture tree reports findings (non-zero exit), one line each.
func TestFixturesExitNonZero(t *testing.T) {
	root, _, _ := fixtureRoot(t)
	var buf bytes.Buffer
	n, err := run(&buf, root, []string{"./cmd/xyvet/testdata/src/..."}, options{})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("expected findings in fixture packages, got none")
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != n {
		t.Errorf("printed %d lines for %d findings", lines, n)
	}
}

// TestCleanTree asserts the repository itself vets clean: the CI gate
// `go run ./cmd/xyvet ./...` must exit 0.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module with the source importer")
	}
	root, _, _ := fixtureRoot(t)
	var buf bytes.Buffer
	n, err := run(&buf, root, []string{"./..."}, options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("module is not xyvet-clean, %d findings:\n%s", n, buf.String())
	}
}

// TestExpandPatterns covers the walker's testdata and module-boundary
// behavior.
func TestExpandPatterns(t *testing.T) {
	root, _, _ := fixtureRoot(t)
	dirs, err := expandPatterns(root, root, []string{"./cmd/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("walk entered testdata: %s", d)
		}
	}
	if _, err := expandPatterns(root, root, []string{"../..."}); err == nil {
		t.Error("pattern outside the module was accepted")
	}
	if _, err := run(io.Discard, root, []string{"./no/such/dir"}, options{}); err == nil {
		t.Error("missing directory was accepted")
	}
}
