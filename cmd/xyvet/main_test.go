package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// wantKey identifies one expected finding in a fixture file.
type wantKey struct {
	file string // base name
	line int
	rule string
}

// collectWants gathers the `// want rule[ rule...]` annotations of a
// loaded fixture package, keyed by (file, line, rule) with counts.
func collectWants(pkg *Package) map[wantKey]int {
	wants := make(map[wantKey]int)
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, rule := range strings.Fields(rest) {
					wants[wantKey{filepath.Base(pos.Filename), pos.Line, rule}]++
				}
			}
		}
	}
	return wants
}

func fixtureRoot(t *testing.T) (root, modpath, fixtures string) {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, modpath, err = findModule(cwd)
	if err != nil {
		t.Fatal(err)
	}
	return root, modpath, filepath.Join(cwd, "testdata", "src")
}

// TestFixtures runs the full analyzer suite over every fixture package
// and requires the finding set to match the `// want` annotations
// exactly — each analyzer has positive and negative cases there.
func TestFixtures(t *testing.T) {
	root, modpath, fixtures := fixtureRoot(t)
	entries, err := os.ReadDir(fixtures)
	if err != nil {
		t.Fatal(err)
	}
	ld := newLoader(root, modpath)
	total := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			pkg, err := ld.loadDir(filepath.Join(fixtures, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if pkg == nil {
				t.Fatal("fixture has no Go files")
			}
			for _, terr := range pkg.TypeErrors {
				t.Errorf("type error: %v", terr)
			}
			wants := collectWants(pkg)
			total += len(wants)
			got := make(map[wantKey]int)
			for _, f := range analyze(pkg) {
				pos := pkg.Fset.Position(f.Pos)
				got[wantKey{filepath.Base(pos.Filename), pos.Line, f.Rule}]++
			}
			var keys []wantKey
			for k := range wants {
				keys = append(keys, k)
			}
			for k := range got {
				if _, ok := wants[k]; !ok {
					keys = append(keys, k)
				}
			}
			sort.Slice(keys, func(i, j int) bool {
				a, b := keys[i], keys[j]
				if a.file != b.file {
					return a.file < b.file
				}
				if a.line != b.line {
					return a.line < b.line
				}
				return a.rule < b.rule
			})
			for _, k := range keys {
				if got[k] != wants[k] {
					t.Errorf("%s:%d [%s]: got %d findings, want %d", k.file, k.line, k.rule, got[k], wants[k])
				}
			}
		})
	}
	if total == 0 {
		t.Fatal("no want annotations found in any fixture")
	}
}

// TestFixturesExitNonZero mirrors the CLI contract: vetting the seeded
// fixture tree reports findings (non-zero exit), one line each.
func TestFixturesExitNonZero(t *testing.T) {
	root, _, _ := fixtureRoot(t)
	var buf bytes.Buffer
	n, err := run(&buf, root, []string{"./cmd/xyvet/testdata/src/..."})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("expected findings in fixture packages, got none")
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != n {
		t.Errorf("printed %d lines for %d findings", lines, n)
	}
}

// TestCleanTree asserts the repository itself vets clean: the CI gate
// `go run ./cmd/xyvet ./...` must exit 0.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module with the source importer")
	}
	root, _, _ := fixtureRoot(t)
	var buf bytes.Buffer
	n, err := run(&buf, root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("module is not xyvet-clean, %d findings:\n%s", n, buf.String())
	}
}

// TestExpandPatterns covers the walker's testdata and module-boundary
// behavior.
func TestExpandPatterns(t *testing.T) {
	root, _, _ := fixtureRoot(t)
	dirs, err := expandPatterns(root, root, []string{"./cmd/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("walk entered testdata: %s", d)
		}
	}
	if _, err := expandPatterns(root, root, []string{"../..."}); err == nil {
		t.Error("pattern outside the module was accepted")
	}
	if _, err := run(io.Discard, root, []string{"./no/such/dir"}); err == nil {
		t.Error("missing directory was accepted")
	}
}
