// Command xyvet is the project's static-analysis suite: a stdlib-only
// driver (go/ast, go/parser, go/types) that loads every package of the
// module and runs project-specific analyzers tuned to the failure modes
// of a long-running subscription system — lock discipline and lock
// ordering, goroutine lifecycle, silently dropped errors, fault-point
// coverage, nondeterminism and stray output. Packages load in parallel
// (dependency-ordered type-checking across GOMAXPROCS workers) and the
// per-function rules fan out per package; four rules are interprocedural,
// built on a module-wide call graph with per-function summaries
// propagated to a fixpoint (see callgraph.go and summary.go).
//
//	go run ./cmd/xyvet ./...
//	go run ./cmd/xyvet -json ./internal/manager ./pubsub
//	go run ./cmd/xyvet -baseline xyvet.baseline ./...
//
// Each finding is printed as
//
//	file:line:col: [rule] message
//
// and xyvet exits 1 when any non-baselined finding is reported (2 on
// load errors). A finding can be suppressed with a comment on the same
// line or on the line directly above it:
//
//	//xyvet:ignore rule[,rule...] optional justification
//
// or allowlisted in a committed baseline file (-baseline), regenerated
// with -write-baseline, so a new strict rule can land without blocking
// unrelated work while the baseline is burned down to zero.
//
// The rules are documented in docs/STATIC_ANALYSIS.md and exercised by
// the fixture packages under cmd/xyvet/testdata/src.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

// options configures one driver run.
type options struct {
	json          bool   // emit findings as a JSON array instead of text lines
	verbose       bool   // per-rule timing and load phases to stderr
	baseline      string // path of a baseline file allowlisting findings
	writeBaseline string // write current findings to this baseline file and report none
}

func main() {
	var opts options
	flag.BoolVar(&opts.json, "json", false, "emit findings as a JSON array on stdout")
	flag.BoolVar(&opts.verbose, "v", false, "print load and per-rule timing to stderr")
	flag.StringVar(&opts.baseline, "baseline", "", "allowlist the findings recorded in this `file`; only new findings fail the run")
	flag.StringVar(&opts.writeBaseline, "write-baseline", "", "write the current findings to this `file` as a baseline and exit 0")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xyvet [flags] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the project analyzers over the given package patterns\n")
		fmt.Fprintf(os.Stderr, "(defaulting to ./...). Patterns are directories relative to\n")
		fmt.Fprintf(os.Stderr, "the current module; dir/... walks a subtree.\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(os.Stderr, "\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "xyvet:", err)
		os.Exit(2)
	}
	n, err := run(os.Stdout, cwd, patterns, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xyvet:", err)
		os.Exit(2)
	}
	if n > 0 {
		os.Exit(1)
	}
}

// run loads every package matched by patterns (resolved against dir's
// module) plus the in-module dependency closure, applies all analyzers
// and prints the surviving findings. It returns the number of findings
// not covered by the baseline (when one is configured).
func run(out io.Writer, dir string, patterns []string, opts options) (int, error) {
	root, modpath, err := findModule(dir)
	if err != nil {
		return 0, err
	}
	dirs, err := expandPatterns(root, dir, patterns)
	if err != nil {
		return 0, err
	}
	timing := &ruleTiming{}
	ld := newLoader(root, modpath)
	t0 := time.Now()
	pkgs, err := ld.loadAll(dirs)
	if err != nil {
		return 0, err
	}
	timing.add("(load)", time.Since(t0))

	for _, pkg := range pkgs {
		if pkg.Analyzed && len(pkg.TypeErrors) > 0 {
			// Analysis runs on whatever type information was recovered,
			// but a broken package can hide findings from every rule that
			// needs resolved objects — say so rather than exiting 0
			// silently. The build step of the CI gate rejects the package
			// anyway.
			fmt.Fprintf(os.Stderr, "xyvet: %s: %d type error(s), analysis may be incomplete (first: %v)\n",
				relPath(root, pkg.Dir), len(pkg.TypeErrors), pkg.TypeErrors[0])
		}
	}

	findings := analyzeAll(pkgs, timing)
	lines := renderFindings(ld.fset, root, findings)

	if opts.verbose {
		for _, e := range timing.snapshot() {
			fmt.Fprintf(os.Stderr, "xyvet: %-14s %8.1fms\n", e.Name, float64(e.D.Microseconds())/1000)
		}
	}

	if opts.writeBaseline != "" {
		if err := writeBaselineFile(opts.writeBaseline, lines); err != nil {
			return 0, err
		}
		fmt.Fprintf(os.Stderr, "xyvet: wrote %d finding(s) to %s\n", len(lines), opts.writeBaseline)
		return 0, nil
	}

	if opts.baseline != "" {
		allowed, err := readBaselineFile(opts.baseline)
		if err != nil {
			return 0, err
		}
		var fresh []string
		baselined := 0
		for _, l := range lines {
			if allowed[l] > 0 {
				allowed[l]--
				baselined++
				continue
			}
			fresh = append(fresh, l)
		}
		stale := 0
		for _, n := range allowed {
			stale += n
		}
		if baselined > 0 {
			fmt.Fprintf(os.Stderr, "xyvet: %d finding(s) suppressed by baseline %s\n", baselined, opts.baseline)
		}
		if stale > 0 {
			fmt.Fprintf(os.Stderr, "xyvet: %d stale baseline entr(ies) in %s no longer match a finding; regenerate with -write-baseline\n", stale, opts.baseline)
		}
		lines = fresh
	}

	if opts.json {
		if err := writeJSON(out, lines); err != nil {
			return 0, err
		}
	} else {
		for _, l := range lines {
			fmt.Fprintln(out, l)
		}
	}
	return len(lines), nil
}
