// Command xyvet is the project's static-analysis suite: a stdlib-only
// driver (go/ast, go/parser, go/types) that loads every package of the
// module and runs project-specific analyzers tuned to the failure modes
// of a long-running subscription system — lock discipline, goroutine
// lifecycle, silently dropped errors, nondeterminism and stray output.
//
//	go run ./cmd/xyvet ./...
//	go run ./cmd/xyvet ./internal/manager ./pubsub
//
// Each finding is printed as
//
//	file:line:col: [rule] message
//
// and xyvet exits 1 when any finding is reported (2 on load errors).
// A finding can be suppressed with a comment on the same line or on the
// line directly above it:
//
//	//xyvet:ignore rule[,rule...] optional justification
//
// The rules are documented in docs/STATIC_ANALYSIS.md and exercised by
// the fixture packages under cmd/xyvet/testdata/src.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xyvet [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the project analyzers over the given package patterns\n")
		fmt.Fprintf(os.Stderr, "(defaulting to ./...). Patterns are directories relative to\n")
		fmt.Fprintf(os.Stderr, "the current module; dir/... walks a subtree.\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "xyvet:", err)
		os.Exit(2)
	}
	n, err := run(os.Stdout, cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xyvet:", err)
		os.Exit(2)
	}
	if n > 0 {
		os.Exit(1)
	}
}

// run loads every package matched by patterns (resolved against dir's
// module), applies all analyzers and prints the surviving findings.
// It returns the number of findings.
func run(out io.Writer, dir string, patterns []string) (int, error) {
	root, modpath, err := findModule(dir)
	if err != nil {
		return 0, err
	}
	dirs, err := expandPatterns(root, dir, patterns)
	if err != nil {
		return 0, err
	}
	ld := newLoader(root, modpath)
	total := 0
	for _, d := range dirs {
		pkg, err := ld.loadDir(d)
		if err != nil {
			return total, fmt.Errorf("loading %s: %w", d, err)
		}
		if pkg == nil { // no buildable Go files
			continue
		}
		if len(pkg.TypeErrors) > 0 {
			// Analysis runs on whatever type information was recovered,
			// but a broken package can hide findings from every rule that
			// needs resolved objects — say so rather than exiting 0
			// silently. The build step of the CI gate rejects the package
			// anyway.
			fmt.Fprintf(os.Stderr, "xyvet: %s: %d type error(s), analysis may be incomplete (first: %v)\n",
				relPath(dir, pkg.Dir), len(pkg.TypeErrors), pkg.TypeErrors[0])
		}
		findings := analyze(pkg)
		for _, f := range findings {
			pos := ld.fset.Position(f.Pos)
			name := relPath(dir, pos.Filename)
			fmt.Fprintf(out, "%s:%d:%d: [%s] %s\n", name, pos.Line, pos.Column, f.Rule, f.Msg)
		}
		total += len(findings)
	}
	return total, nil
}
