package main

import (
	"fmt"
	"strings"
)

// runDeeplock is lockcheck's interprocedural extension: a call made while
// a lock is held, into a function whose summary says it may block
// (channel send/receive, select with no default, WaitGroup/Cond wait, or
// an injected callback — possibly several static calls deep), stalls
// every other goroutine contending for that lock. The base lockcheck
// rule already flags direct blocking operations and unresolvable plug
// points (interface methods, callbacks) inside a critical section; this
// rule covers the remaining gap, static concrete calls, and names the
// exact chain to the blocking operation.
func runDeeplock(e *engine) []Finding {
	var out []Finding
	for _, n := range e.nodes {
		if !n.pkg.Analyzed {
			continue
		}
		for _, c := range n.sum.calls {
			if c.async || c.kind != callStatic || len(c.held) == 0 || len(c.targets) == 0 {
				continue
			}
			t := c.targets[0]
			if t.sum.mayBlock == nil {
				continue
			}
			out = append(out, Finding{
				Pos:  c.pos,
				Rule: "deeplock",
				Msg: fmt.Sprintf("call to %s while holding %s may block: %s",
					t.name(), heldNames(c.held), e.renderBlockChain(t)),
			})
		}
	}
	return out
}

// renderBlockChain follows the may-block witness through the call graph
// down to the direct blocking operation: "a.f → a.g: channel send at
// file:42".
func (e *engine) renderBlockChain(t *funcNode) string {
	var b strings.Builder
	b.WriteString(t.name())
	bf := t.sum.mayBlock
	for bf != nil && bf.next != nil {
		b.WriteString(" → ")
		b.WriteString(bf.next.name())
		bf = bf.next.sum.mayBlock
	}
	if bf != nil {
		fmt.Fprintf(&b, ": %s at %s", bf.why, e.shortPos(bf.pos))
	}
	return b.String()
}

// heldNames renders the held-lock set for messages.
func heldNames(held []heldLock) string {
	names := make([]string, len(held))
	for i, h := range held {
		names[i] = h.display
	}
	return strings.Join(names, ", ")
}
