package main

import (
	"fmt"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// runLockorder builds the module-wide lock-acquisition graph and reports
// its cycles — potential deadlocks. Locks are keyed by the types.Object
// of the mutex field (or variable), so every instance of a struct shares
// one lock class, the standard lockdep approximation. An edge A→B means
// "B was acquired while A was held", either directly in one body or
// through a call chain whose callee (transitively) acquires B; the
// finding message carries the full acquisition path of the cycle.
//
// Two flavors of self-deadlock are reported besides multi-lock cycles:
// re-acquiring the same lock through the same receiver expression in one
// function is a definite double-lock; same-class self-edges across
// different receivers are suppressed (two instances may legitimately
// nest).
func runLockorder(e *engine) []Finding {
	g := newLockGraph()
	var out []Finding

	for _, n := range e.nodes {
		s := &n.sum
		for i := range s.events {
			ev := &s.events[i]
			for _, h := range ev.held {
				if h.caller || h.obj == nil || ev.obj == nil {
					continue
				}
				if h.obj == ev.obj {
					if h.recv == ev.recv {
						out = append(out, Finding{
							Pos:  ev.pos,
							Rule: "lockorder",
							Msg: fmt.Sprintf("%s (%s) acquired again while already held (taken at %s); sync mutexes are not reentrant — this deadlocks",
								ev.display, ev.recv, e.shortPos(h.pos)),
						})
					}
					continue
				}
				g.edge(h.obj, ev.obj, h.display, ev.display,
					fmt.Sprintf("%s acquired at %s in %s while holding %s", ev.display, e.shortPos(ev.pos), n.name(), h.display),
					ev.pos)
			}
		}
		for _, c := range s.calls {
			if c.async || len(c.held) == 0 {
				continue
			}
			for _, t := range c.targets {
				for _, lockObj := range t.sum.acquireOrder {
					path := t.sum.acquires[lockObj]
					for _, h := range c.held {
						if h.caller || h.obj == nil || h.obj == lockObj {
							continue
						}
						g.edge(h.obj, lockObj, h.display, path.event.display,
							fmt.Sprintf("%s acquired at %s (via %s) while %s holds %s",
								path.event.display, e.shortPos(path.event.pos), renderCallPath(t, path), n.name(), h.display),
							c.pos)
					}
				}
			}
		}
	}

	for _, cyc := range g.cycles() {
		out = append(out, Finding{
			Pos:  cyc.pos,
			Rule: "lockorder",
			Msg:  "lock-order cycle (potential deadlock): " + cyc.describe(),
		})
	}
	return out
}

// renderCallPath renders "f → g → h" for an acquisition witness.
func renderCallPath(first *funcNode, path *acqPath) string {
	var parts []string
	parts = append(parts, first.name())
	for _, f := range path.via {
		if f != first {
			parts = append(parts, f.name())
		}
	}
	if path.owner != first && (len(path.via) == 0 || path.via[len(path.via)-1] != path.owner) {
		parts = append(parts, path.owner.name())
	}
	return strings.Join(parts, " → ")
}

// shortPos renders a position as base-filename:line for messages.
func (e *engine) shortPos(pos token.Pos) string {
	p := e.fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// --- lock graph with cycle reporting ---
//
// The graph core is object-agnostic (integer nodes with display names
// and edge witnesses) so the cycle reporter is unit-testable without
// go/types machinery.

type lockGraph struct {
	ids   map[types.Object]int
	graph *orderGraph
}

func newLockGraph() *lockGraph {
	return &lockGraph{ids: make(map[types.Object]int), graph: newOrderGraph()}
}

func (g *lockGraph) node(obj types.Object, display string) int {
	if id, ok := g.ids[obj]; ok {
		return id
	}
	id := g.graph.addNode(display)
	g.ids[obj] = id
	return id
}

func (g *lockGraph) edge(from, to types.Object, fromName, toName, witness string, pos token.Pos) {
	g.graph.addEdge(g.node(from, fromName), g.node(to, toName), witness, pos)
}

func (g *lockGraph) cycles() []orderCycle {
	return g.graph.cycles()
}

// orderGraph is the pure directed-graph core: nodes are lock classes,
// edges carry a human-readable witness and the position of the
// acquisition that created them.
type orderGraph struct {
	names []string
	edges map[int]map[int]orderEdge // from -> to -> first witness
}

type orderEdge struct {
	witness string
	pos     token.Pos
}

func newOrderGraph() *orderGraph {
	return &orderGraph{edges: make(map[int]map[int]orderEdge)}
}

func (g *orderGraph) addNode(name string) int {
	g.names = append(g.names, name)
	return len(g.names) - 1
}

// addEdge records from→to, keeping the first witness (deterministic:
// callers iterate nodes and events in source order).
func (g *orderGraph) addEdge(from, to int, witness string, pos token.Pos) {
	if from == to {
		return
	}
	m := g.edges[from]
	if m == nil {
		m = make(map[int]orderEdge)
		g.edges[from] = m
	}
	if _, ok := m[to]; !ok {
		m[to] = orderEdge{witness, pos}
	}
}

// orderCycle is one elementary cycle chosen to represent a strongly
// connected component of the lock graph.
type orderCycle struct {
	nodes   []int // in order; nodes[0] is the smallest id of the SCC
	names   []string
	witness []string // witness[i] explains nodes[i] -> nodes[i+1 mod n]
	pos     token.Pos
}

func (c orderCycle) describe() string {
	var b strings.Builder
	for i, name := range c.names {
		if i > 0 {
			b.WriteString(" → ")
		}
		b.WriteString(name)
	}
	b.WriteString(" → ")
	b.WriteString(c.names[0])
	b.WriteString(" [")
	for i, w := range c.witness {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(w)
	}
	b.WriteString("]")
	return b.String()
}

// cycles finds the strongly connected components with more than one node
// and reports, per component, the shortest cycle through its smallest
// node id — one finding per deadlock-capable lock cluster, with a
// deterministic representative path.
func (g *orderGraph) cycles() []orderCycle {
	sccs := g.tarjan()
	var out []orderCycle
	for _, scc := range sccs {
		if len(scc) < 2 {
			continue
		}
		sort.Ints(scc)
		in := make(map[int]bool, len(scc))
		for _, n := range scc {
			in[n] = true
		}
		cycle := g.shortestCycleFrom(scc[0], in)
		if cycle == nil {
			continue
		}
		c := orderCycle{nodes: cycle}
		for i, n := range cycle {
			c.names = append(c.names, g.names[n])
			next := cycle[(i+1)%len(cycle)]
			e := g.edges[n][next]
			c.witness = append(c.witness, e.witness)
			if i == 0 {
				c.pos = e.pos
			}
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// shortestCycleFrom BFS-walks edges restricted to the component and
// returns the shortest start→…→start cycle, preferring smaller node ids
// on ties for determinism.
func (g *orderGraph) shortestCycleFrom(start int, in map[int]bool) []int {
	prev := make(map[int]int)
	queue := []int{start}
	visited := map[int]bool{start: true}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		var succs []int
		for to := range g.edges[n] {
			if in[to] {
				succs = append(succs, to)
			}
		}
		sort.Ints(succs)
		for _, to := range succs {
			if to == start {
				// Reconstruct start → … → n, closing at start.
				var rev []int
				for cur := n; cur != start; cur = prev[cur] {
					rev = append(rev, cur)
				}
				path := []int{start}
				for i := len(rev) - 1; i >= 0; i-- {
					path = append(path, rev[i])
				}
				return path
			}
			if !visited[to] {
				visited[to] = true
				prev[to] = n
				queue = append(queue, to)
			}
		}
	}
	return nil
}

// tarjan computes strongly connected components, deterministic over node
// id order.
func (g *orderGraph) tarjan() [][]int {
	n := len(g.names)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var (
		stack []int
		next  int
		out   [][]int
	)
	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		var succs []int
		for to := range g.edges[v] {
			succs = append(succs, to)
		}
		sort.Ints(succs)
		for _, w := range succs {
			if index[w] < 0 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			out = append(out, scc)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] < 0 {
			strongconnect(v)
		}
	}
	return out
}
