package main

import (
	"go/ast"
	"strings"
)

// runHashcache flags direct hash/fnv constructor calls outside
// internal/xmldom. The project's structural hashing lives in xmldom
// (HashFold/HashString for strings, Node.Hash64 and Document.Hashes for
// trees): those fold inline with no hasher object, and the document-level
// vector is computed once per version and cached. A fresh fnv.New64a on a
// hot path both allocates per call and silently diverges from the cached
// hashes the diff layer compares — the exact per-call cost the hash-cache
// work removed from xydiff.
//
// internal/xmldom is exempt: it owns the primitives and the tests pinning
// them bit-identical to hash/fnv.
func runHashcache(pkg *Package) []Finding {
	if strings.HasSuffix(pkg.Path, "/internal/xmldom") {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := pkgFuncCall(pkg, call, "hash/fnv")
			if !ok || !strings.HasPrefix(name, "New") {
				return true
			}
			out = append(out, Finding{
				Pos:  call.Pos(),
				Rule: "hashcache",
				Msg:  "direct fnv." + name + " outside internal/xmldom; use xmldom.HashString/HashFold (Node.Hash64, Document.Hashes for trees, StreamHasher for raw bytes) so hashes stay cached and comparable",
			})
			return true
		})
	}
	return out
}
