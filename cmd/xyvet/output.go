package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"
)

// baselineHeader opens every baseline file written by -write-baseline.
// The CI selftest asserts the committed baseline is byte-identical to a
// fresh run, so the header must be stable.
const baselineHeader = `# xyvet baseline — allowlisted findings, one per line exactly as xyvet
# prints them (module-root-relative). A run with -baseline fails only on
# findings missing from this file, so a new strict rule can land without
# blocking unrelated work. Shrink this file to zero: fix the finding,
# then regenerate with -write-baseline.
`

// renderFindings formats findings as the canonical output lines,
// module-root-relative so baseline files are stable across working
// directories.
func renderFindings(fset *token.FileSet, root string, findings []Finding) []string {
	lines := make([]string, 0, len(findings))
	for _, f := range findings {
		pos := fset.Position(f.Pos)
		lines = append(lines, fmt.Sprintf("%s:%d:%d: [%s] %s", relPath(root, pos.Filename), pos.Line, pos.Column, f.Rule, f.Msg))
	}
	return lines
}

// writeBaselineFile writes the canonical baseline: header plus the
// already-sorted finding lines.
func writeBaselineFile(path string, lines []string) error {
	var b strings.Builder
	b.WriteString(baselineHeader)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// readBaselineFile parses a baseline into a multiset of finding lines.
// Blank lines and #-comments are skipped.
func readBaselineFile(path string) (map[string]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	allowed := make(map[string]int)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		allowed[line]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return allowed, nil
}

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// writeJSON renders the canonical text lines as a JSON array. Parsing
// the lines (rather than carrying positions separately) keeps the two
// output modes provably consistent.
func writeJSON(out io.Writer, lines []string) error {
	arr := make([]jsonFinding, 0, len(lines))
	for _, l := range lines {
		jf, ok := parseFindingLine(l)
		if !ok {
			return fmt.Errorf("internal error: unparseable finding line %q", l)
		}
		arr = append(arr, jf)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(arr)
}

// parseFindingLine splits "file:line:col: [rule] msg".
func parseFindingLine(l string) (jsonFinding, bool) {
	i := strings.Index(l, ": [")
	if i < 0 {
		return jsonFinding{}, false
	}
	head, rest := l[:i], l[i+3:]
	j := strings.Index(rest, "] ")
	if j < 0 {
		return jsonFinding{}, false
	}
	rule, msg := rest[:j], rest[j+2:]
	parts := strings.Split(head, ":")
	if len(parts) < 3 {
		return jsonFinding{}, false
	}
	var line, col int
	if _, err := fmt.Sscanf(parts[len(parts)-2]+" "+parts[len(parts)-1], "%d %d", &line, &col); err != nil {
		return jsonFinding{}, false
	}
	return jsonFinding{
		File: strings.Join(parts[:len(parts)-2], ":"),
		Line: line,
		Col:  col,
		Rule: rule,
		Msg:  msg,
	}, true
}
