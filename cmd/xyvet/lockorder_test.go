package main

import (
	"go/token"
	"reflect"
	"strings"
	"testing"
)

// TestOrderGraphCycles exercises the pure cycle reporter: SCC detection,
// one representative (shortest, smallest-id-anchored) cycle per
// component, witness threading and determinism.
func TestOrderGraphCycles(t *testing.T) {
	type edge struct{ from, to int }
	tests := []struct {
		name  string
		nodes []string
		edges []edge
		want  [][]int // expected cycle node sequences, in output order
	}{
		{
			name:  "acyclic chain",
			nodes: []string{"a", "b", "c"},
			edges: []edge{{0, 1}, {1, 2}, {0, 2}},
			want:  nil,
		},
		{
			name:  "two-node cycle",
			nodes: []string{"a", "b"},
			edges: []edge{{0, 1}, {1, 0}},
			want:  [][]int{{0, 1}},
		},
		{
			name:  "self edge ignored",
			nodes: []string{"a"},
			edges: []edge{{0, 0}},
			want:  nil,
		},
		{
			name:  "three-node ring",
			nodes: []string{"a", "b", "c"},
			edges: []edge{{0, 1}, {1, 2}, {2, 0}},
			want:  [][]int{{0, 1, 2}},
		},
		{
			// The SCC {0,1,2} contains both a long ring and a chord
			// 1→0: the representative must be the SHORT cycle through
			// the smallest id, not the full ring.
			name:  "shortest representative preferred",
			nodes: []string{"a", "b", "c"},
			edges: []edge{{0, 1}, {1, 2}, {2, 0}, {1, 0}},
			want:  [][]int{{0, 1}},
		},
		{
			// Two independent deadlock clusters → exactly two findings,
			// ordered by edge insertion (witness position) not discovery.
			name:  "two components",
			nodes: []string{"a", "b", "c", "d"},
			edges: []edge{{0, 1}, {1, 0}, {2, 3}, {3, 2}},
			want:  [][]int{{0, 1}, {2, 3}},
		},
		{
			// A cycle with an acyclic tail hanging off it: the tail nodes
			// are in no SCC and must not appear in the cycle.
			name:  "tail excluded",
			nodes: []string{"a", "b", "c", "d"},
			edges: []edge{{0, 1}, {1, 0}, {1, 2}, {2, 3}},
			want:  [][]int{{0, 1}},
		},
		{
			// Ties between equal-length cycles resolve toward smaller
			// successor ids: 0→1→0 beats 0→2→0 because BFS visits
			// sorted successors.
			name:  "tie broken by node id",
			nodes: []string{"a", "b", "c"},
			edges: []edge{{0, 2}, {2, 0}, {0, 1}, {1, 0}},
			want:  [][]int{{0, 1}},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			g := newOrderGraph()
			for _, n := range tc.nodes {
				g.addNode(n)
			}
			for i, e := range tc.edges {
				// Distinct positions in insertion order so cycle output
				// order (sorted by witness pos) is predictable.
				g.addEdge(e.from, e.to, "w", token.Pos(i+1))
			}
			var got [][]int
			for _, c := range g.cycles() {
				got = append(got, c.nodes)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("cycles = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestOrderGraphWitnesses checks that each reported cycle carries one
// witness per edge, in path order, and that describe() closes the loop.
func TestOrderGraphWitnesses(t *testing.T) {
	g := newOrderGraph()
	a := g.addNode("store.mu")
	b := g.addNode("sink.mu")
	g.addEdge(a, b, "sink.mu under store.mu", token.Pos(10))
	g.addEdge(b, a, "store.mu under sink.mu", token.Pos(20))
	// A later duplicate edge must not displace the first witness.
	g.addEdge(a, b, "later duplicate", token.Pos(30))

	cycles := g.cycles()
	if len(cycles) != 1 {
		t.Fatalf("got %d cycles, want 1", len(cycles))
	}
	c := cycles[0]
	if want := []string{"sink.mu under store.mu", "store.mu under sink.mu"}; !reflect.DeepEqual(c.witness, want) {
		t.Errorf("witness = %q, want %q", c.witness, want)
	}
	if c.pos != token.Pos(10) {
		t.Errorf("cycle pos = %v, want first edge's pos 10", c.pos)
	}
	desc := c.describe()
	if want := "store.mu → sink.mu → store.mu"; !strings.HasPrefix(desc, want) {
		t.Errorf("describe() = %q, want prefix %q", desc, want)
	}
	if !strings.Contains(desc, "[sink.mu under store.mu; store.mu under sink.mu]") {
		t.Errorf("describe() = %q, missing ordered witness list", desc)
	}
}
