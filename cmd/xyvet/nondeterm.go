package main

import (
	"fmt"
	"go/ast"
)

// runNondeterm flags the two classic sources of irreproducible runs in
// non-test code:
//
//   - the global math/rand source (rand.Intn, rand.Seed, ...): the
//     experiments of EXPERIMENTS.md must be reproducible run-to-run, so
//     randomness flows through an injected, explicitly seeded *rand.Rand
//     (rand.New/rand.NewSource/rand.NewZipf construct one and are fine);
//   - time.Sleep: sleeping is synchronisation by lucky timing — library
//     and pipeline code must wait on channels, sync primitives or
//     tickers instead.
func runNondeterm(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := pkgFuncCall(pkg, call, "math/rand"); ok && !randConstructor(name) {
				out = append(out, Finding{
					Pos:  call.Pos(),
					Rule: "nondeterm",
					Msg:  fmt.Sprintf("rand.%s uses the global math/rand source; inject an explicitly seeded *rand.Rand for reproducible runs", name),
				})
			}
			if name, ok := pkgFuncCall(pkg, call, "math/rand/v2"); ok && !randConstructor(name) {
				out = append(out, Finding{
					Pos:  call.Pos(),
					Rule: "nondeterm",
					Msg:  fmt.Sprintf("rand.%s uses the global math/rand/v2 source; inject an explicitly seeded *rand.Rand for reproducible runs", name),
				})
			}
			if name, ok := pkgFuncCall(pkg, call, "time"); ok && name == "Sleep" {
				out = append(out, Finding{
					Pos:  call.Pos(),
					Rule: "nondeterm",
					Msg:  "time.Sleep in non-test code is timing-dependent synchronisation; use a channel, sync primitive or time.Ticker",
				})
			}
			return true
		})
	}
	return out
}

// randConstructor lists the math/rand functions that build an injected
// source rather than touching the global one.
func randConstructor(name string) bool {
	switch name {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return true
	}
	return false
}
