package main

import (
	"go/ast"
	"go/types"
)

// runGoleak flags goroutines launched in library packages whose body has
// no visible tie to a lifecycle: no context.Context, no WaitGroup, no
// done-channel receive, select or channel range. A goroutine none of
// those reach cannot be stopped or awaited — in a monitor that runs for
// months, every such launch is a leak. Commands (package main) own the
// process lifetime and are exempt.
func runGoleak(pkg *Package) []Finding {
	if isMainPkg(pkg) {
		return nil
	}
	decls := funcDecls(pkg)
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goroutineBody(pkg, g, decls)
			if body == nil {
				// Launched function is declared outside the package;
				// nothing to inspect, give it the benefit of the doubt.
				return true
			}
			if !hasLifecycleRef(pkg, body) {
				out = append(out, Finding{
					Pos:  g.Pos(),
					Rule: "goleak",
					Msg:  "goroutine has no context, done channel or WaitGroup tying it to a lifecycle; it cannot be stopped or awaited",
				})
			}
			return true
		})
	}
	return out
}

// funcDecls maps declared function/method objects to their declarations
// so `go m.loop()` can be inspected like a literal.
func funcDecls(pkg *Package) map[types.Object]*ast.FuncDecl {
	m := make(map[types.Object]*ast.FuncDecl)
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := pkg.Info.Defs[fd.Name]; obj != nil {
					m[obj] = fd
				}
			}
		}
	}
	return m
}

// goroutineBody resolves the body of the function a go statement runs.
func goroutineBody(pkg *Package, g *ast.GoStmt, decls map[types.Object]*ast.FuncDecl) *ast.BlockStmt {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if obj := calleeObject(pkg, g.Call); obj != nil {
		if fd := decls[obj]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

// hasLifecycleRef reports whether body references any lifecycle
// mechanism: a context.Context value, a sync.WaitGroup, a select
// statement, a channel receive, or a range over a channel.
func hasLifecycleRef(pkg *Package, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t := pkg.Info.Types[x.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.Ident:
			obj := pkg.Info.Uses[x]
			if obj == nil {
				obj = pkg.Info.Defs[x]
			}
			if obj != nil && typeIs(obj.Type(), "context.Context", "sync.WaitGroup") {
				found = true
			}
		}
		return !found
	})
	return found
}
