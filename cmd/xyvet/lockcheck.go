package main

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// runLockcheck enforces the project's lock discipline:
//
//   - every mu.Lock()/mu.RLock() statement must be paired, in the same
//     statement list, with either an immediate `defer mu.Unlock()` or an
//     explicit unlock later in the list (conditional unlocks buried in
//     nested blocks leak the lock on the other paths);
//   - no channel send and no callback invocation (func-typed parameter
//     or field, or in-module interface method) may run while a lock is
//     held — both can block or re-enter and deadlock a long-running
//     monitor;
//   - functions named *Locked run with a caller-held lock by project
//     convention, so their whole body is scanned the same way.
func runLockcheck(pkg *Package) []Finding {
	c := &lockChecker{pkg: pkg, localFuncs: localClosureVars(pkg)}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BlockStmt:
				c.checkList(x.List)
			case *ast.CaseClause:
				c.checkList(x.Body)
			case *ast.CommClause:
				c.checkList(x.Body)
			case *ast.FuncDecl:
				if x.Body != nil && strings.HasSuffix(x.Name.Name, "Locked") {
					held := fmt.Sprintf("a caller-held lock (callers of %s hold it per the *Locked convention)", x.Name.Name)
					for _, s := range x.Body.List {
						c.scanHeld(s, held)
					}
				}
			}
			return true
		})
	}
	return c.findings
}

type lockChecker struct {
	pkg *Package
	// localFuncs holds variables bound to function literals in the same
	// package; calling one is not an external callback.
	localFuncs map[types.Object]bool
	findings   []Finding
}

// checkList examines one statement list for lock/unlock pairing and
// critical-section contents.
func (c *lockChecker) checkList(list []ast.Stmt) {
	for i, stmt := range list {
		recv, kind, ok := c.lockStmt(stmt)
		if !ok {
			continue
		}
		unlock := map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}[kind]
		// Find the statement releasing this lock in the same list: an
		// immediate deferred unlock (critical section lasts to the end of
		// the list) or an explicit unlock (critical section ends there).
		region := -1 // index one past the critical section; -1 = unpaired
		deferred := false
		for j := i + 1; j < len(list) && region < 0; j++ {
			switch s := list[j].(type) {
			case *ast.DeferStmt:
				if j == i+1 && c.isMethodCall(s.Call, recv, unlock) {
					region, deferred = len(list), true
				}
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok && c.isMethodCall(call, recv, unlock) {
					region = j
				}
			}
		}
		if region < 0 {
			c.findings = append(c.findings, Finding{
				Pos:  stmt.Pos(),
				Rule: "lockcheck",
				Msg: fmt.Sprintf("%s.%s() is not followed by `defer %s.%s()` or an unlock in the same statement list",
					recv, kind, recv, unlock),
			})
			continue
		}
		start := i + 1
		if deferred {
			start = i + 2
		}
		held := fmt.Sprintf("%s (taken by %s.%s())", recv, recv, kind)
		for _, s := range list[start:region] {
			c.scanHeld(s, held)
		}
	}
}

// lockStmt recognises `recv.Lock()` / `recv.RLock()` statements on sync
// mutexes (directly, through a named field, or via sync.Locker).
func (c *lockChecker) lockStmt(stmt ast.Stmt) (recv, kind string, ok bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", "", false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	kind = sel.Sel.Name
	if kind != "Lock" && kind != "RLock" {
		return "", "", false
	}
	if !c.isSyncMethod(sel) {
		return "", "", false
	}
	return types.ExprString(sel.X), kind, true
}

// isMethodCall reports whether call is `recv.name()` for the textual
// receiver recv and a sync package method.
func (c *lockChecker) isMethodCall(call *ast.CallExpr, recv, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	return c.isSyncMethod(sel) && types.ExprString(sel.X) == recv
}

// isSyncMethod reports whether the selected method is declared by the
// sync package (sync.Mutex, sync.RWMutex, sync.Locker — including
// promoted embeds). Without type information it falls back to a receiver
// naming heuristic so partially checked packages still get coverage.
func (c *lockChecker) isSyncMethod(sel *ast.SelectorExpr) bool {
	if s, ok := c.pkg.Info.Selections[sel]; ok {
		obj := s.Obj()
		return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
	}
	if t := c.pkg.Info.Types[sel.X].Type; t != nil {
		return typeIs(t, "sync.Mutex", "sync.RWMutex", "sync.Locker")
	}
	name := types.ExprString(sel.X)
	for _, suffix := range []string{"mu", "Mu", "mutex", "Mutex"} {
		if strings.HasSuffix(name, suffix) {
			return true
		}
	}
	return false
}

// scanHeld walks one statement of a critical section looking for
// operations that must not run under a lock. Function literals, go
// statements and defers are skipped: their bodies execute outside the
// lexical critical section.
func (c *lockChecker) scanHeld(stmt ast.Stmt, held string) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			c.findings = append(c.findings, Finding{
				Pos:  x.Pos(),
				Rule: "lockcheck",
				Msg:  fmt.Sprintf("channel send under %s; a full channel blocks the critical section", held),
			})
		case *ast.CallExpr:
			if why, ok := c.callbackCall(x); ok {
				c.findings = append(c.findings, Finding{
					Pos:  x.Pos(),
					Rule: "lockcheck",
					Msg:  fmt.Sprintf("%s under %s; callbacks can block or re-enter and deadlock", why, held),
				})
			}
		}
		return true
	})
}

// callbackCall reports whether call invokes code outside the package's
// control: a func-typed parameter, variable or field, or a method of an
// interface defined in this module (the system's plug points — Delivery,
// Journal, Sink...). Concrete methods, locally defined closures and
// stdlib interfaces are allowed.
func (c *lockChecker) callbackCall(call *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := c.pkg.Info.Uses[fun]
		if v, ok := obj.(*types.Var); ok && isFuncValue(v.Type()) && !c.localFuncs[obj] {
			return fmt.Sprintf("call of function value %s", fun.Name), true
		}
	case *ast.SelectorExpr:
		if sel, ok := c.pkg.Info.Selections[fun]; ok {
			switch sel.Kind() {
			case types.FieldVal:
				if isFuncValue(sel.Type()) {
					return fmt.Sprintf("call of function value %s", types.ExprString(fun)), true
				}
			case types.MethodVal:
				recv := deref(sel.Recv())
				if types.IsInterface(recv) && inModule(c.pkg, sel.Obj()) {
					return fmt.Sprintf("call of in-module interface method %s", types.ExprString(fun)), true
				}
			}
			return "", false
		}
		// Package-qualified func-typed variable.
		if v, ok := c.pkg.Info.Uses[fun.Sel].(*types.Var); ok && isFuncValue(v.Type()) {
			return fmt.Sprintf("call of function value %s", types.ExprString(fun)), true
		}
	}
	return "", false
}

// localClosureVars collects variables that are, somewhere in the
// package, assigned a function literal: `f := func() {...}`. Invoking
// one under a lock stays within the author's control, unlike a
// parameter or field injected from outside.
func localClosureVars(pkg *Package) map[types.Object]bool {
	set := make(map[types.Object]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		if _, ok := ast.Unparen(rhs).(*ast.FuncLit); !ok {
			return
		}
		if obj := pkg.Info.Defs[id]; obj != nil {
			set[obj] = true
		} else if obj := pkg.Info.Uses[id]; obj != nil {
			set[obj] = true
		}
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) == len(x.Rhs) {
					for i := range x.Lhs {
						record(x.Lhs[i], x.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(x.Names) == len(x.Values) {
					for i := range x.Names {
						record(x.Names[i], x.Values[i])
					}
				}
			}
			return true
		})
	}
	return set
}

func isFuncValue(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}
