// Command xydiff computes the XyDelta between two versions of an XML
// document (Section 5.2): it prints the delta as XML, an annotated
// track-changes view of the new version, and verifies the XyDelta
// invariant old + delta = new.
//
//	xydiff [-annotate] [-quiet] old.xml new.xml
package main

import (
	"flag"
	"fmt"
	"os"

	"xymon/internal/xmldom"
	"xymon/internal/xydiff"
)

var (
	annotate = flag.Bool("annotate", true, "print the annotated change view")
	quiet    = flag.Bool("quiet", false, "print nothing; exit status 1 when the versions differ")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: xydiff [-annotate] [-quiet] old.xml new.xml")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	old, err := parseFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	new, err := parseFile(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	delta, err := xydiff.Diff(old, new)
	if err != nil {
		fatal(err)
	}
	if *quiet {
		if delta.Empty() {
			return
		}
		os.Exit(1)
	}
	if delta.Empty() {
		fmt.Println("documents are identical")
		return
	}
	fmt.Printf("%d operation(s)\n\n", len(delta.Ops))
	fmt.Println(delta.RenderXML("document").XML())
	if *annotate {
		fmt.Println()
		fmt.Print(xydiff.AnnotateText(new, delta))
	}
	// Verify the XyDelta invariant before trusting the output.
	rebuilt, err := xydiff.Apply(old, delta)
	if err != nil {
		fatal(fmt.Errorf("apply failed: %w", err))
	}
	if rebuilt.XML() != new.XML() {
		fatal(fmt.Errorf("internal error: old + delta does not reproduce the new version"))
	}
}

func parseFile(path string) (*xmldom.Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	doc, err := xmldom.Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "xydiff: %v\n", err)
	os.Exit(1)
}
