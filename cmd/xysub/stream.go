// xysub stream — pull consumer for the durable notification
// change-stream (internal/stream). Where check/explain work on
// subscription source, this mode works on a running system's output:
// the stream directory a System with Options.DurableDir writes under
// <dir>/stream.
//
//	xysub stream tail   -dir DIR [-consumer NAME] [-max N] [-resync]
//	xysub stream replay -dir DIR [-from OFF] [-max N]
//	xysub stream commit -dir DIR -at OFF [-consumer NAME]
//
// tail reads from the consumer's durable cursor to the head, printing
// one record per line, committing the cursor after every batch; run it
// again to resume where it left off. replay reads from the oldest
// retained offset (or -from) without touching any cursor. commit
// repositions the cursor explicitly — the manual half of the
// truncation re-sync path. Records print as tab-separated
// offset, time, subscription, notification count, report XML.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"time"

	"xymon/internal/stream"
)

// runStream dispatches one stream subcommand. It takes the argument
// list after "stream" plus explicit writers so tests drive it directly.
func runStream(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		streamUsage(stderr)
		return 2
	}
	mode, args := args[0], args[1:]
	fs := flag.NewFlagSet("stream "+mode, flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "stream directory (<DurableDir>/stream)")
	consumer := fs.String("consumer", "xysub", "cursor name to read or commit under")
	max := fs.Int("max", stream.DefaultMaxFetch, "records per poll")
	from := fs.Uint64("from", 0, "replay start offset (default: oldest retained)")
	at := fs.Uint64("at", 0, "offset to commit the cursor at")
	resync := fs.Bool("resync", false, "on truncation, skip to the oldest retained offset")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dir == "" {
		fmt.Fprintln(stderr, "xysub stream: -dir is required")
		return 2
	}
	fromSet, atSet := false, false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "from":
			fromSet = true
		case "at":
			atSet = true
		}
	})

	switch mode {
	case "tail":
		return streamDrain(stdout, stderr, *dir, *consumer, *max, *resync, true, false, 0)
	case "replay":
		// Replay never commits; it reads under a throwaway cursor name so
		// the real consumer's durable position is untouched.
		return streamDrain(stdout, stderr, *dir, "replay."+*consumer, *max, *resync, false, fromSet, *from)
	case "commit":
		if !atSet {
			fmt.Fprintln(stderr, "xysub stream commit: -at is required")
			return 2
		}
		cur, err := stream.OpenCursor(*dir, *consumer, nil)
		if err != nil {
			fmt.Fprintf(stderr, "xysub stream: %v\n", err)
			return 1
		}
		if err := cur.Commit(*at); err != nil {
			fmt.Fprintf(stderr, "xysub stream: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "cursor %s committed at %d\n", *consumer, *at)
		return 0
	default:
		streamUsage(stderr)
		return 2
	}
}

// streamDrain reads from the start position to the stream's head,
// printing every record, optionally committing the cursor after each
// batch. It returns once a poll comes back empty (caught up).
func streamDrain(stdout, stderr io.Writer, dir, consumer string, max int, resync, commit, fromSet bool, from uint64) int {
	rd, err := stream.OpenReader(dir, consumer, stream.ReaderOptions{MaxFetch: max})
	if err != nil {
		fmt.Fprintf(stderr, "xysub stream: %v\n", err)
		return 1
	}
	if fromSet {
		rd.Seek(from)
	} else if !commit {
		// Replay with no -from: the full retained window.
		if _, err := rd.SeekOldest(); err != nil {
			fmt.Fprintf(stderr, "xysub stream: %v\n", err)
			return 1
		}
	}
	total := 0
	for {
		recs, err := rd.Poll(max)
		if err != nil {
			var trunc *stream.TruncatedError
			if errors.As(err, &trunc) && resync {
				first, serr := rd.SeekOldest()
				if serr != nil {
					fmt.Fprintf(stderr, "xysub stream: %v\n", serr)
					return 1
				}
				fmt.Fprintf(stderr, "xysub stream: offsets [%d,%d) truncated by retention; resuming at %d\n",
					trunc.Requested, first, first)
				continue
			}
			fmt.Fprintf(stderr, "xysub stream: %v\n", err)
			return 1
		}
		if len(recs) == 0 {
			break
		}
		for _, rec := range recs {
			fmt.Fprintf(stdout, "%d\t%s\t%s\t%d\t%s\n",
				rec.Offset, rec.Time.Format(time.RFC3339), rec.Subscription, rec.Notifications, rec.XML)
		}
		total += len(recs)
		if commit {
			if err := rd.Commit(); err != nil {
				fmt.Fprintf(stderr, "xysub stream: %v\n", err)
				return 1
			}
		}
	}
	fmt.Fprintf(stderr, "xysub stream: %d records, next offset %d\n", total, rd.Next())
	return 0
}

func streamUsage(w io.Writer) {
	fmt.Fprintln(w, `usage: xysub stream tail|replay|commit -dir DIR [flags]
  tail    read from the durable cursor to the head, committing as it goes
  replay  read from the oldest retained offset (or -from) without committing
  commit  set the cursor to -at`)
}
