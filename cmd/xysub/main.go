// Command xysub parses, validates and explains subscriptions written in
// the subscription language of Section 5.
//
//	xysub check file.sub ...   parse + validate, report errors
//	xysub explain file.sub     print the compiled view: monitoring queries,
//	                           their atomic conditions (one atomic event
//	                           each), continuous queries, report spec
//	xysub stream ...           consume the durable notification
//	                           change-stream (see stream.go)
//
// With no files, input is read from stdin.
package main

import (
	"fmt"
	"io"
	"os"

	"xymon/internal/sublang"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	files := os.Args[2:]
	switch cmd {
	case "check", "explain":
	case "stream":
		os.Exit(runStream(files, os.Stdout, os.Stderr))
	default:
		usage()
		os.Exit(2)
	}
	inputs, err := readInputs(files)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xysub: %v\n", err)
		os.Exit(1)
	}
	failed := false
	for name, src := range inputs {
		sub, err := sublang.Parse(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			failed = true
			continue
		}
		if cmd == "check" {
			fmt.Printf("%s: ok (subscription %s)\n", name, sub.Name)
			continue
		}
		explainTo(os.Stdout, sub)
	}
	if failed {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: xysub check|explain [file ...] | xysub stream ...")
}

func readInputs(files []string) (map[string]string, error) {
	inputs := make(map[string]string)
	if len(files) == 0 {
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, err
		}
		inputs["<stdin>"] = string(src)
		return inputs, nil
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		inputs[f] = string(src)
	}
	return inputs, nil
}

func explainTo(w io.Writer, sub *sublang.Subscription) {
	fmt.Fprintf(w, "subscription %s\n", sub.Name)
	for i, m := range sub.Monitoring {
		fmt.Fprintf(w, "  monitoring query #%d (label %s)\n", i+1, m.Label())
		fmt.Fprintf(w, "    complex event = conjunction of %d atomic events:\n", len(m.Where))
		for _, c := range m.Where {
			kind := "strong"
			if c.Weak() {
				kind = "weak"
			}
			fmt.Fprintf(w, "      [%s] %s\n", kind, c)
		}
	}
	for _, c := range sub.Continuous {
		mode := ""
		if c.Delta {
			mode = " (delta)"
		}
		fmt.Fprintf(w, "  continuous query %s%s\n", c.Name, mode)
		if c.Query != nil {
			fmt.Fprintf(w, "    %s\n", c.Query)
		}
		if c.When.Freq != 0 {
			fmt.Fprintf(w, "    evaluated %s\n", c.When.Freq)
		} else {
			fmt.Fprintf(w, "    triggered by %s.%s\n", c.When.NotifSub, c.When.NotifQuery)
		}
	}
	for _, r := range sub.Refresh {
		fmt.Fprintf(w, "  refresh %q %s\n", r.URL, r.Freq)
	}
	for _, v := range sub.Virtual {
		fmt.Fprintf(w, "  virtual %s.%s\n", v.Subscription, v.Query)
	}
	if sub.Report != nil {
		fmt.Fprintf(w, "  report when:")
		for i, t := range sub.Report.When {
			if i > 0 {
				fmt.Fprintf(w, " or")
			}
			fmt.Fprintf(w, " %s", t)
		}
		fmt.Fprintln(w)
		if sub.Report.AtMostCount > 0 {
			fmt.Fprintf(w, "    atmost %d notifications\n", sub.Report.AtMostCount)
		}
		if sub.Report.AtMostFreq > 0 {
			fmt.Fprintf(w, "    atmost %s\n", sub.Report.AtMostFreq)
		}
		if sub.Report.Archive > 0 {
			fmt.Fprintf(w, "    archive %s\n", sub.Report.Archive)
		}
	}
}
