package main

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"xymon/internal/stream"
)

// streamFixture publishes n records into a fresh stream directory.
func streamFixture(t *testing.T, n int, o stream.Options) string {
	t.Helper()
	dir := t.TempDir()
	st, err := stream.Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	when := time.Date(2001, 5, 21, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		_, err := st.Publish([]stream.Record{{
			Subscription:  "S",
			Time:          when,
			Notifications: 1,
			XML:           fmt.Sprintf("<r n=\"%d\"/>", i),
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestStreamTailResumesFromCursor(t *testing.T) {
	dir := streamFixture(t, 5, stream.Options{})
	var out, errb strings.Builder
	if code := runStream([]string{"tail", "-dir", dir}, &out, &errb); code != 0 {
		t.Fatalf("tail exit %d: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("tail printed %d lines, want 5:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[0], "0\t") || !strings.Contains(lines[0], "<r n=\"0\"/>") {
		t.Errorf("first line = %q", lines[0])
	}

	// Second tail: the committed cursor makes it a no-op.
	out.Reset()
	if code := runStream([]string{"tail", "-dir", dir}, &out, &errb); code != 0 {
		t.Fatalf("second tail exit %d", code)
	}
	if out.Len() != 0 {
		t.Errorf("second tail replayed committed records:\n%s", out.String())
	}
}

func TestStreamReplayDoesNotCommit(t *testing.T) {
	dir := streamFixture(t, 3, stream.Options{})
	var out, errb strings.Builder
	if code := runStream([]string{"replay", "-dir", dir}, &out, &errb); code != 0 {
		t.Fatalf("replay exit %d: %s", code, errb.String())
	}
	if got := strings.Count(out.String(), "\n"); got != 3 {
		t.Fatalf("replay printed %d records", got)
	}
	// Replay again from an explicit offset: still all there, cursor-free.
	out.Reset()
	if code := runStream([]string{"replay", "-dir", dir, "-from", "1"}, &out, &errb); code != 0 {
		t.Fatalf("replay -from exit %d", code)
	}
	if got := strings.Count(out.String(), "\n"); got != 2 {
		t.Fatalf("replay -from 1 printed %d records:\n%s", got, out.String())
	}
}

func TestStreamCommitRepositionsCursor(t *testing.T) {
	dir := streamFixture(t, 4, stream.Options{})
	var out, errb strings.Builder
	if code := runStream([]string{"commit", "-dir", dir, "-at", "2"}, &out, &errb); code != 0 {
		t.Fatalf("commit exit %d: %s", code, errb.String())
	}
	out.Reset()
	if code := runStream([]string{"tail", "-dir", dir}, &out, &errb); code != 0 {
		t.Fatalf("tail exit %d", code)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "2\t") {
		t.Fatalf("tail after commit -at 2:\n%s", out.String())
	}
}

func TestStreamTailResyncAfterTruncation(t *testing.T) {
	dir := streamFixture(t, 30, stream.Options{SegmentBytes: 256, MaxBehind: 5})
	// Cursor at 0, then retention truncates the old segments away.
	var out, errb strings.Builder
	if code := runStream([]string{"commit", "-dir", dir, "-at", "0"}, &out, &errb); code != 0 {
		t.Fatal(errb.String())
	}
	st, err := stream.Open(dir, stream.Options{SegmentBytes: 256, MaxBehind: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Retain(); err != nil {
		t.Fatal(err)
	}
	first := st.FirstRetained()
	st.Close()
	if first == 0 {
		t.Fatal("retention reclaimed nothing; fixture too small")
	}

	// Without -resync the truncation is an error...
	out.Reset()
	errb.Reset()
	if code := runStream([]string{"tail", "-dir", dir}, &out, &errb); code != 1 {
		t.Fatalf("tail over truncated offsets exit %d, want 1: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "truncated") {
		t.Errorf("stderr = %q", errb.String())
	}
	// ...with it, the reader skips to the oldest retained offset.
	out.Reset()
	errb.Reset()
	if code := runStream([]string{"tail", "-dir", dir, "-resync"}, &out, &errb); code != 0 {
		t.Fatalf("tail -resync exit %d: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], fmt.Sprintf("%d\t", first)) {
		t.Fatalf("resync should resume at %d:\n%s", first, out.String())
	}
	if !strings.Contains(errb.String(), "truncated by retention") {
		t.Errorf("resync notice missing: %q", errb.String())
	}
}

func TestStreamUsageErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := runStream(nil, &out, &errb); code != 2 {
		t.Errorf("no mode: exit %d", code)
	}
	if code := runStream([]string{"tail"}, &out, &errb); code != 2 {
		t.Errorf("no -dir: exit %d", code)
	}
	if code := runStream([]string{"commit", "-dir", t.TempDir()}, &out, &errb); code != 2 {
		t.Errorf("commit without -at: exit %d", code)
	}
	if code := runStream([]string{"bogus", "-dir", "x"}, &out, &errb); code != 2 {
		t.Errorf("unknown mode: exit %d", code)
	}
}
