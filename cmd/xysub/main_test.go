package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xymon/internal/sublang"
)

const sample = `subscription Sample
monitoring
select <UpdatedPage url=URL/>
where URL extends "http://inria.fr/Xy/" and modified self
continuous delta Q
select p/title from culture/museum m, m/painting p where m/address contains "Amsterdam"
when biweekly
virtual Other.Thing
refresh "http://inria.fr/Xy/m.xml" weekly
report when notifications.count > 100 atmost 500 atmost weekly archive monthly
`

func TestExplainOutput(t *testing.T) {
	sub, err := sublang.Parse(sample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var b strings.Builder
	explainTo(&b, sub)
	out := b.String()
	for _, want := range []string{
		"subscription Sample",
		"monitoring query #1 (label UpdatedPage)",
		"[strong] URL extends",
		"[weak] updated self",
		"continuous query Q (delta)",
		"evaluated biweekly",
		"virtual Other.Thing",
		`refresh "http://inria.fr/Xy/m.xml" weekly`,
		"report when: notifications.count > 100",
		"atmost 500 notifications",
		"atmost weekly",
		"archive monthly",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestReadInputsFiles(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.sub")
	if err := os.WriteFile(p1, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	inputs, err := readInputs([]string{p1})
	if err != nil {
		t.Fatalf("readInputs: %v", err)
	}
	if inputs[p1] != sample {
		t.Errorf("content mismatch")
	}
	if _, err := readInputs([]string{filepath.Join(dir, "missing.sub")}); err == nil {
		t.Error("missing file should fail")
	}
}

func TestExplainNotificationTrigger(t *testing.T) {
	sub, err := sublang.Parse(`subscription T
monitoring select <H/> where URL extends "http://a.example/"
continuous C select x from y/z x when T.H
report when immediate`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var b strings.Builder
	explainTo(&b, sub)
	if !strings.Contains(b.String(), "triggered by T.H") {
		t.Errorf("output = %s", b.String())
	}
}
