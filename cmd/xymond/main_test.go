package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"xymon"
)

func testServer(t *testing.T) *server {
	t.Helper()
	srv := &server{}
	sys, err := xymon.New(xymon.Options{
		Delivery: xymon.DeliveryFunc(func(r *xymon.Report) error {
			srv.mu.Lock()
			defer srv.mu.Unlock()
			srv.reports = append(srv.reports, r)
			return nil
		}),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv.sys = sys
	return srv
}

const testSub = `subscription HttpWatch
monitoring
select <UpdatedPage url=URL/>
where URL extends "http://w.example/" and modified self
report when immediate`

func TestSubscribeAndPushFlow(t *testing.T) {
	srv := testServer(t)

	// Subscribe via raw body.
	rec := httptest.NewRecorder()
	srv.handleSubscribe(rec, httptest.NewRequest("POST", "/subscribe", strings.NewReader(testSub)))
	if rec.Code != http.StatusCreated || !strings.Contains(rec.Body.String(), "HttpWatch") {
		t.Fatalf("subscribe: %d %s", rec.Code, rec.Body.String())
	}

	// Duplicate or garbage subscriptions are rejected.
	rec = httptest.NewRecorder()
	srv.handleSubscribe(rec, httptest.NewRequest("POST", "/subscribe", strings.NewReader(testSub)))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("duplicate subscribe: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.handleSubscribe(rec, httptest.NewRequest("POST", "/subscribe", strings.NewReader("nope")))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("garbage subscribe: %d", rec.Code)
	}

	// Push two versions of a page.
	rec = httptest.NewRecorder()
	srv.handlePush(rec, httptest.NewRequest("POST", "/push?url=http://w.example/a.xml",
		strings.NewReader("<p><v>1</v></p>")))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "0 notifications") {
		t.Fatalf("push v1: %d %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	srv.handlePush(rec, httptest.NewRequest("POST", "/push?url=http://w.example/a.xml",
		strings.NewReader("<p><v>2</v></p>")))
	if !strings.Contains(rec.Body.String(), "1 notifications") {
		t.Fatalf("push v2: %s", rec.Body.String())
	}

	// The report shows up on the web view.
	rec = httptest.NewRecorder()
	srv.handleReports(rec, httptest.NewRequest("GET", "/reports", nil))
	if !strings.Contains(rec.Body.String(), "UpdatedPage") {
		t.Errorf("reports page: %s", rec.Body.String())
	}

	// Stats are JSON with the processed counters.
	rec = httptest.NewRecorder()
	srv.handleStats(rec, httptest.NewRequest("GET", "/stats", nil))
	var st xymon.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Manager.DocsProcessed != 2 || st.Manager.Subscriptions != 1 {
		t.Errorf("stats = %+v", st.Manager)
	}

	// Unsubscribe.
	rec = httptest.NewRecorder()
	srv.handleUnsubscribe(rec, httptest.NewRequest("POST", "/unsubscribe?name=HttpWatch", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("unsubscribe: %d %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	srv.handleUnsubscribe(rec, httptest.NewRequest("POST", "/unsubscribe?name=HttpWatch", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("double unsubscribe: %d", rec.Code)
	}
}

func TestPushErrors(t *testing.T) {
	srv := testServer(t)
	rec := httptest.NewRecorder()
	srv.handlePush(rec, httptest.NewRequest("POST", "/push", strings.NewReader("<a/>")))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("push without url: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.handlePush(rec, httptest.NewRequest("POST", "/push?url=u", strings.NewReader("not-xml <")))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("push bad xml: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.handlePushHTML(rec, httptest.NewRequest("POST", "/pushhtml", strings.NewReader("x")))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("pushhtml without url: %d", rec.Code)
	}
}

func TestPushHTML(t *testing.T) {
	srv := testServer(t)
	rec := httptest.NewRecorder()
	srv.handleSubscribe(rec, httptest.NewRequest("POST", "/subscribe", strings.NewReader(`subscription H
monitoring select <M url=URL/> where URL extends "http://h.example/" and self contains "xyleme"
report when immediate`)))
	if rec.Code != http.StatusCreated {
		t.Fatalf("subscribe: %d %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	srv.handlePushHTML(rec, httptest.NewRequest("POST", "/pushhtml?url=http://h.example/x.html",
		strings.NewReader("<html>Xyleme!</html>")))
	if !strings.Contains(rec.Body.String(), "1 notifications") {
		t.Errorf("pushhtml: %s", rec.Body.String())
	}
}

func TestIndexPage(t *testing.T) {
	srv := testServer(t)
	rec := httptest.NewRecorder()
	srv.handleIndex(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "subscription") {
		t.Errorf("index: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.handleIndex(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown path: %d", rec.Code)
	}
}

func TestSaveEndpoint(t *testing.T) {
	srv := testServer(t)
	// Without a data dir, save fails...
	rec := httptest.NewRecorder()
	srv.handleSave(rec, httptest.NewRequest("POST", "/save", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("save without dir: %d", rec.Code)
	}
	// ...but an explicit dir works.
	dir := t.TempDir()
	srv.handlePush(httptest.NewRecorder(),
		httptest.NewRequest("POST", "/push?url=http://s.example/a.xml", strings.NewReader("<a><b>1</b></a>")))
	rec = httptest.NewRecorder()
	srv.handleSave(rec, httptest.NewRequest("POST", "/save?dir="+dir, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("save: %d %s", rec.Code, rec.Body.String())
	}
}
