// Command xymond runs the subscription system as a daemon with the web
// front-end of Section 3: users post subscriptions through an HTTP form
// (the paper uses an Apache server), documents are pushed through an HTTP
// API or crawled from built-in synthetic sites, and reports are consulted
// on the web ("which seems more appropriate for very large reports").
//
//	xymond [-addr :8080] [-journal path] [-data dir] [-sites n] [-crawl 1m] [-workers n]
//
// Endpoints:
//
//	GET  /               subscription form + system status
//	POST /subscribe      body: subscription text → 201 or 400
//	POST /unsubscribe?name=N
//	POST /push?url=U&dtd=D&domain=X   body: XML document
//	POST /pushhtml?url=U              body: HTML page
//	GET  /reports        latest reports (web consultation)
//	GET  /stats          JSON counters
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"html"
	"io"
	"log"
	"net/http"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"xymon"
	"xymon/internal/alerter"
	"xymon/internal/flow"
)

var (
	addr     = flag.String("addr", ":8080", "HTTP listen address")
	journal  = flag.String("journal", "", "journal file for subscription recovery")
	sites    = flag.Int("sites", 0, "number of built-in synthetic sites to crawl")
	crawlInt = flag.Duration("crawl", time.Minute, "crawl loop interval")
	maxKeep  = flag.Int("keep", 100, "reports retained for web consultation")
	workers  = flag.Int("workers", 4, "document-flow workers (the threaded alerters of Section 6.1)")
	dataDir  = flag.String("data", "", "warehouse snapshot directory (loaded at startup; POST /save persists)")
)

type server struct {
	sys *xymon.System

	mu      sync.Mutex
	reports []*xymon.Report
}

func main() {
	flag.Parse()
	srv := &server{}
	sys, err := xymon.New(xymon.Options{
		JournalPath: *journal,
		DataDir:     *dataDir,
		Delivery: xymon.DeliveryFunc(func(r *xymon.Report) error {
			srv.mu.Lock()
			defer srv.mu.Unlock()
			srv.reports = append(srv.reports, r)
			if len(srv.reports) > *maxKeep {
				srv.reports = srv.reports[len(srv.reports)-*maxKeep:]
			}
			return nil
		}),
	})
	if err != nil {
		log.Fatalf("xymond: %v", err)
	}
	srv.sys = sys

	for i := 0; i < *sites; i++ {
		sys.AddSite(xymon.NewSite(xymon.SiteSpec{
			BaseURL: fmt.Sprintf("http://shop%d.example/", i),
			Pages:   5, Products: 20, Seed: int64(i), HTMLShare: 2,
		}))
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var loops sync.WaitGroup
	var runner *flow.Runner
	if *sites > 0 {
		// Documents flow from the crawler through a bounded worker pool —
		// the in-process version of the paper's threaded alerters and
		// flow-split processors.
		runner = flow.NewRunner(*workers, 256, sys.Manager.ProcessDoc)
		sys.Crawler.SetSink(func(d *alerter.Doc) {
			if err := runner.Submit(d); err != nil {
				log.Printf("crawl: dropping %s: %v", d.Meta.URL, err)
			}
		})
	}
	loops.Add(1)
	go func() {
		defer loops.Done()
		ticker := time.NewTicker(*crawlInt)
		defer ticker.Stop()
		for {
			if *sites > 0 {
				if n := sys.Crawl(); n > 0 {
					log.Printf("crawl: fetched %d pages", n)
				}
			}
			sys.Tick()
			select {
			case <-ticker.C:
			case <-ctx.Done():
				return
			}
		}
	}()

	mux := http.NewServeMux()
	mux.HandleFunc("GET /", srv.handleIndex)
	mux.HandleFunc("POST /subscribe", srv.handleSubscribe)
	mux.HandleFunc("POST /unsubscribe", srv.handleUnsubscribe)
	mux.HandleFunc("POST /push", srv.handlePush)
	mux.HandleFunc("POST /pushhtml", srv.handlePushHTML)
	mux.HandleFunc("GET /reports", srv.handleReports)
	mux.HandleFunc("GET /stats", srv.handleStats)
	mux.HandleFunc("POST /save", srv.handleSave)
	log.Printf("xymond listening on %s (%d synthetic sites)", *addr, *sites)

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatalf("xymond: %v", err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting requests, stop the crawl/tick
	// loop, then drain the worker pool.
	log.Printf("xymond: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("xymond: shutdown: %v", err)
	}
	stop()
	loops.Wait()
	if runner != nil {
		runner.Close()
	}
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	st := s.sys.Stats()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<html><head><title>xymond</title></head><body>
<h1>Xyleme subscription system</h1>
<p>%d subscriptions, %d complex events, %d atomic events, %d pages warehoused,
%d documents processed, %d notifications.</p>
<form method="POST" action="/subscribe">
<textarea name="subscription" rows="14" cols="80">subscription MyXyleme
monitoring
select &lt;UpdatedPage url=URL/&gt;
where URL extends "http://shop0.example/" and modified self
report when immediate
</textarea><br>
<input type="submit" value="Subscribe">
</form>
<p><a href="/reports">reports</a> · <a href="/stats">stats</a></p>
</body></html>`,
		st.Manager.Subscriptions, st.Manager.ComplexEvents, st.Manager.AtomicEvents,
		st.Pages, st.Manager.DocsProcessed, st.Manager.Notifications)
}

func (s *server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	src := r.FormValue("subscription")
	if src == "" {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		src = string(body)
	}
	sub, err := s.sys.Subscribe(src)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusCreated)
	fmt.Fprintf(w, "subscribed %s\n", sub.Name)
}

func (s *server) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	name := r.FormValue("name")
	if err := s.sys.Unsubscribe(name); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	fmt.Fprintf(w, "unsubscribed %s\n", name)
}

func (s *server) handlePush(w http.ResponseWriter, r *http.Request) {
	url := r.URL.Query().Get("url")
	if url == "" {
		http.Error(w, "missing url parameter", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	n, err := s.sys.PushXML(url, r.URL.Query().Get("dtd"), r.URL.Query().Get("domain"), string(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fmt.Fprintf(w, "%d notifications\n", n)
}

func (s *server) handlePushHTML(w http.ResponseWriter, r *http.Request) {
	url := r.URL.Query().Get("url")
	if url == "" {
		http.Error(w, "missing url parameter", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	n, err := s.sys.PushHTML(url, body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fmt.Fprintf(w, "%d notifications\n", n)
}

func (s *server) handleReports(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	reports := append([]*xymon.Report(nil), s.reports...)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, "<html><body><h1>%d reports</h1>", len(reports))
	for i := len(reports) - 1; i >= 0; i-- {
		rep := reports[i]
		fmt.Fprintf(w, "<h2>%s — %s (%d notifications)</h2><pre>%s</pre>",
			html.EscapeString(rep.Subscription), rep.Time.Format(time.RFC3339),
			rep.Notifications, html.EscapeString(rep.Doc.XML()))
	}
	fmt.Fprint(w, "</body></html>")
}

func (s *server) handleSave(w http.ResponseWriter, r *http.Request) {
	if err := s.sys.SaveWarehouse(r.URL.Query().Get("dir")); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	fmt.Fprintln(w, "warehouse saved")
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.sys.Stats()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
