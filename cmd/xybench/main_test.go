package main

import "testing"

// TestExperimentsSmoke runs every experiment at quick scale: the harness
// itself must not panic or wedge, whatever the timing results are.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-scale experiments still take seconds; skipped with -short")
	}
	*quick = true
	defer func() { *quick = false }()
	cheap := map[string]bool{"baselines": true, "memory": true, "crawl": true, "urlalerter": true}
	for _, e := range experiments {
		if !cheap[e.name] {
			continue // the timing-loop experiments take seconds each; the
			// shell smoke runs and the root benchmarks cover them
		}
		t.Run(e.name, func(t *testing.T) {
			e.run()
		})
	}
}

func TestScale(t *testing.T) {
	*quick = false
	if scale(1000) != 1000 {
		t.Error("scale must be identity when quick is off")
	}
	*quick = true
	defer func() { *quick = false }()
	if scale(1000) != 100 {
		t.Errorf("scale(1000) = %d, want 100", scale(1000))
	}
	if scale(5) != 1 {
		t.Errorf("scale(5) = %d, want 1", scale(5))
	}
}
