package main

import (
	"fmt"
	"runtime"
	"time"

	"xymon/internal/core"
	"xymon/internal/webgen"
)

// timeIt warms op up, then runs it in a loop until minDur has elapsed (at
// least minIters iterations) and returns the mean time per operation.
func timeIt(minDur time.Duration, minIters int, op func(i int)) time.Duration {
	warm := minIters / 4
	if warm < 8 {
		warm = 8
	}
	for i := 0; i < warm; i++ {
		op(i)
	}
	runtime.GC() // keep collector pauses of structure building out of the window
	iters := 0
	start := time.Now()
	for time.Since(start) < minDur || iters < minIters {
		op(iters)
		iters++
	}
	return time.Since(start) / time.Duration(iters)
}

// matchTime measures the mean per-document matching time of m over docs.
func matchTime(m interface {
	Match(core.EventSet) []core.ComplexID
}, docs []core.EventSet) time.Duration {
	return timeIt(300*time.Millisecond, 256, func(i int) {
		m.Match(docs[i%len(docs)])
	})
}

// buildMatcher loads a workload into a fresh matcher.
func buildMatcher(w *webgen.EventWorkload) *core.Matcher {
	m := core.NewMatcher()
	if err := w.Load(m.Add); err != nil {
		panic(err)
	}
	return m
}

func header(cols ...string) {
	for i, c := range cols {
		if i > 0 {
			fmt.Print("  ")
		}
		fmt.Printf("%12s", c)
	}
	fmt.Println()
}

func row(cells ...string) {
	for i, c := range cells {
		if i > 0 {
			fmt.Print("  ")
		}
		fmt.Printf("%12s", c)
	}
	fmt.Println()
}

func us(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1000.0)
}
