package main

import (
	"fmt"
	"math"
	"time"

	"xymon/internal/alerter"
	"xymon/internal/baseline"
	"xymon/internal/core"
	"xymon/internal/reporter"
	"xymon/internal/sublang"
	"xymon/internal/warehouse"
	"xymon/internal/webgen"
)

// runFig5 prints Figure 5: time to process one document (µs) as a
// function of p = Card(S), one column per Card(C). Paper shape: linear in
// p; ~1 ms at p = 100 with Card(C) = 10^6 on 2001 hardware.
func runFig5() {
	cardA := scale(100000)
	cardCs := []int{scale(10000), scale(100000), scale(1000000)}
	ps := []int{10, 20, 40, 60, 80, 100}
	const m = 3

	fmt.Printf("time per document (us), Card(A)=%d, m=%d\n", cardA, m)
	cols := []string{"p"}
	for _, c := range cardCs {
		cols = append(cols, fmt.Sprintf("C=%d", c))
	}
	header(cols...)
	for _, p := range ps {
		cells := []string{fmt.Sprintf("%d", p)}
		for _, cardC := range cardCs {
			// Build, measure, release: retaining all 18 structures (six of
			// them with a million complex events) would hold gigabytes.
			w := webgen.GenEventWorkload(int64(1000+p), cardA, cardC, m, p, 1024)
			mt := buildMatcher(w)
			cells = append(cells, us(matchTime(mt, w.Docs)))
		}
		row(cells...)
	}
}

// runFig6 prints Figure 6: time per document (µs) against log10(k). The
// paper controls k by varying Card(C) from 10^4 to 10^6 with p=20,
// Card(A)=10^5, m=3 and observes a logarithmic dependence.
func runFig6() {
	cardA := scale(100000)
	const (
		m = 3
		p = 20
	)
	fmt.Printf("time per document (us) vs k, Card(A)=%d, m=%d, p=%d\n", cardA, m, p)
	header("Card(C)", "k", "log10(k)", "us/doc")
	for _, cardC := range []int{scale(10000), scale(33000), scale(100000), scale(330000), scale(1000000)} {
		w := webgen.GenEventWorkload(2000, cardA, cardC, m, p, 1024)
		mt := buildMatcher(w)
		d := matchTime(mt, w.Docs)
		row(fmt.Sprintf("%d", cardC), fmt.Sprintf("%.1f", w.K()),
			fmt.Sprintf("%.2f", math.Log10(w.K())), us(d))
	}
}

// runMSweep prints the Section 4.2 claim: cost independent of m for
// m in 2..10 (with p >= m).
func runMSweep() {
	cardA := scale(100000)
	cardC := scale(100000)
	const p = 20
	fmt.Printf("time per document (us) vs m, Card(A)=%d, Card(C)=%d, p=%d\n", cardA, cardC, p)
	header("m", "us/doc")
	for m := 2; m <= 10; m++ {
		w := webgen.GenEventWorkload(int64(3000+m), cardA, cardC, m, p, 1024)
		mt := buildMatcher(w)
		row(fmt.Sprintf("%d", m), us(matchTime(mt, w.Docs)))
	}
}

// runThroughput prints the matcher's sustained rate at 10^6 complex
// events. Paper: several thousand event sets per second, i.e. the load of
// about 100 crawlers at 50 documents/second each.
func runThroughput() {
	cardA := scale(100000)
	cardC := scale(1000000)
	const (
		m = 3
		p = 20
	)
	w := webgen.GenEventWorkload(4000, cardA, cardC, m, p, 4096)
	mt := buildMatcher(w)
	d := matchTime(mt, w.Docs)
	perSec := float64(time.Second) / float64(d)
	fmt.Printf("Card(A)=%d Card(C)=%d m=%d p=%d\n", cardA, cardC, m, p)
	header("us/doc", "docs/s", "crawlers")
	row(us(d), fmt.Sprintf("%.0f", perSec), fmt.Sprintf("%.0f", perSec/50))
	fmt.Println("\n(paper: thousands of docs/s; one crawler fetches ~50 docs/s; ~100 crawlers supported)")
}

// runMemory prints the structure's memory footprint — the live map-based
// structure and the frozen Compact snapshot — and extrapolates both to the
// paper's sizing point: ~500 MB for Card(A)=10^6, Card(C)=10^7, m=10.
func runMemory() {
	cardA := scale(100000)
	const m = 10
	fmt.Printf("structure memory, Card(A)=%d, m=%d\n", cardA, m)
	header("Card(C)", "live B/cx", "live MB", "frozen B/cx", "frozen MB")
	var livePer, frozenPer float64
	for _, cardC := range []int{scale(10000), scale(100000), scale(500000)} {
		w := webgen.GenEventWorkload(5000, cardA, cardC, m, 20, 1)
		mt := buildMatcher(w)
		frozen := core.Freeze(mt)
		liveBytes := mt.MemoryEstimate()
		frozenBytes := frozen.MemoryEstimate()
		livePer = float64(liveBytes) / float64(cardC)
		frozenPer = float64(frozenBytes) / float64(cardC)
		row(fmt.Sprintf("%d", cardC),
			fmt.Sprintf("%.0f", livePer), fmt.Sprintf("%.1f", float64(liveBytes)/1e6),
			fmt.Sprintf("%.0f", frozenPer), fmt.Sprintf("%.1f", float64(frozenBytes)/1e6))
	}
	fmt.Printf("\nextrapolated to the paper's point (Card(C)=10^7, m=10):\n")
	fmt.Printf("  live map structure: %.1f GB; frozen snapshot: %.1f GB (paper: ~0.5 GB in C++)\n",
		livePer*1e7/1e9, frozenPer*1e7/1e9)
}

// runBaselines prints the Section 4.1 matcher ablation.
func runBaselines() {
	cardA := scale(10000)
	cardC := scale(10000)
	const (
		m = 3
		p = 20
	)
	w := webgen.GenEventWorkload(6000, cardA, cardC, m, p, 1024)
	fmt.Printf("Card(A)=%d Card(C)=%d m=%d p=%d\n", cardA, cardC, m, p)
	header("matcher", "us/doc")
	live := core.NewMatcher()
	for _, impl := range []struct {
		name string
		m    baseline.Matcher
	}{
		{"aes", live},
		{"counting", baseline.NewCounting()},
		{"naive", baseline.NewNaive()},
	} {
		if err := w.Load(impl.m.Add); err != nil {
			panic(err)
		}
		row(impl.name, us(matchTime(impl.m, w.Docs)))
	}
	row("aes-frozen", us(matchTime(core.Freeze(live), w.Docs)))
	fmt.Println("\n(naive is linear in Card(C); counting is linear in p*k; aes is O(p log k))")
}

// runPartition prints the subscription-partitioned scaling of Section 4.2.
func runPartition() {
	cardA := scale(100000)
	cardC := scale(400000)
	const (
		m = 3
		p = 20
	)
	w := webgen.GenEventWorkload(7000, cardA, cardC, m, p, 1024)
	fmt.Printf("Card(A)=%d Card(C)=%d m=%d p=%d\n", cardA, cardC, m, p)
	header("blocks", "us/doc (seq)", "us/doc (par)")
	for _, blocks := range []int{1, 2, 4, 8} {
		seq := core.NewPartitioned(blocks, false)
		par := core.NewPartitioned(blocks, true)
		if err := w.Load(seq.Add); err != nil {
			panic(err)
		}
		if err := w.Load(par.Add); err != nil {
			panic(err)
		}
		row(fmt.Sprintf("%d", blocks), us(matchTime(seq, w.Docs)), us(matchTime(par, w.Docs)))
	}
}

// runURLAlerter prints the Section 6.2 ablation: hash prefix lookup vs
// the trie ("dictionary") structure. Paper: trie ~30% faster, memory
// overhead too high.
func runURLAlerter() {
	patterns := scale(1000000)
	urls := make([]string, 4096)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://site%d.example/path/sub%d/page%d.xml", i%500, i%37, i)
	}
	fmt.Printf("%d URL-extends patterns\n", patterns)
	header("structure", "us/lookup", "MB")
	for _, impl := range []struct {
		name string
		idx  alerter.PrefixIndex
	}{
		{"hash", alerter.NewHashPrefixIndex()},
		{"trie", alerter.NewTriePrefixIndex()},
	} {
		for i := 0; i < patterns; i++ {
			impl.idx.Add(fmt.Sprintf("http://site%d.example/path/sub%d/", i%500, i%37), core.Event(i))
		}
		d := timeIt(200*time.Millisecond, 256, func(i int) {
			impl.idx.Lookup(urls[i%len(urls)], func(core.Event) {})
		})
		row(impl.name, us(d), fmt.Sprintf("%.1f", float64(impl.idx.MemoryEstimate())/1e6))
	}
}

// runXMLAlerter prints the Section 6.3 cost grid: document size × depth,
// with the crawl-rate comparison (one Xyleme crawler ≈ 50 docs/s).
func runXMLAlerter() {
	xa := alerter.NewXMLAlerter()
	vocab := webgen.Vocabulary()
	for i, w := range vocab {
		xa.Register(core.Event(i+1), sublang.Condition{
			Kind: sublang.CondElement, Tag: fmt.Sprintf("e%d", i%20), Str: w,
		})
	}
	fmt.Printf("%d tag-contains-word conditions registered\n", len(vocab))
	header("size", "depth", "us/doc", "docs/s")
	for _, cfg := range []struct{ size, depth int }{
		{100, 5}, {1000, 5}, {1000, 20}, {10000, 5}, {10000, 20},
	} {
		doc := webgen.RandomTree(11, cfg.size, cfg.depth)
		d := &alerter.Doc{
			Meta:   warehouse.Metadata{URL: "http://x/", Type: warehouse.XML},
			Status: warehouse.StatusUnchanged,
			Doc:    doc,
		}
		per := timeIt(200*time.Millisecond, 16, func(int) {
			xa.Detect(d, func(core.Event) {})
		})
		row(fmt.Sprintf("%d", cfg.size), fmt.Sprintf("%d", cfg.depth),
			us(per), fmt.Sprintf("%.0f", float64(time.Second)/float64(per)))
	}
	fmt.Println("\n(paper: cost bounded by Size x Depth; must sustain ~50 docs/s per crawler)")
}

// runReporter prints the Reporter's notification rate against the paper's
// 2.4M notifications/day claim.
func runReporter() {
	rep := reporter.New(nil)
	subs := scale(100000)
	for i := 0; i < subs; i++ {
		rep.Register(fmt.Sprintf("S%d", i), &sublang.ReportSpec{
			When: []sublang.ReportTerm{{Kind: sublang.TermCount, Count: 999}},
		})
	}
	per := timeIt(300*time.Millisecond, 1024, func(i int) {
		rep.Notify(reporter.Notification{Subscription: fmt.Sprintf("S%d", i%subs), Label: "U"})
	})
	perDay := float64(24*time.Hour) / float64(per)
	fmt.Printf("%d subscriptions registered\n", subs)
	header("us/notif", "notifs/day")
	row(us(per), fmt.Sprintf("%.2e", perDay))
	fmt.Println("\n(paper: over 2.4 million notifications per day on one PC)")
}
