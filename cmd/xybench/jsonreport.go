package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"xymon"
	"xymon/internal/alerter"
	"xymon/internal/reporter"
	"xymon/internal/sublang"
	"xymon/internal/webgen"
	"xymon/internal/xmldom"
	"xymon/internal/xydiff"
)

// benchResult is one row of the JSON benchmark trajectory: the numbers the
// de-contention work is judged by. DocsPerSec is zero for measurements
// where a document rate makes no sense (e.g. reporter notifications).
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	DocsPerSec  float64 `json:"docs_per_sec,omitempty"`
	// Counters carries scenario-specific totals (e.g. the warehouse's
	// tiered skip counters) so a row is self-accounting: the throughput
	// claim and the mechanism behind it live in the same record.
	Counters map[string]uint64 `json:"counters,omitempty"`
}

type benchReport struct {
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Results    []benchResult `json:"results"`
}

// measure runs op like timeIt and additionally reports the mean heap
// allocations per operation, from the runtime's Mallocs counter.
func measure(name string, minDur time.Duration, minIters int, op func(i int)) benchResult {
	warm := minIters / 4
	if warm < 8 {
		warm = 8
	}
	for i := 0; i < warm; i++ {
		op(i)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	iters := 0
	start := time.Now()
	for time.Since(start) < minDur || iters < minIters {
		op(iters)
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return benchResult{
		Name:        name,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
	}
}

// withDocsRate fills in the documents-per-second figure from ns/op.
func (r benchResult) withDocsRate() benchResult {
	if r.NsPerOp > 0 {
		r.DocsPerSec = 1e9 / r.NsPerOp
	}
	return r
}

// runJSON measures the benchmark trajectory — the fixed set of hot-path
// measurements tracked across PRs — and writes BENCH_<date>.json. The
// scales are moderate on purpose: the trajectory is for trend comparison
// (same machine, before vs after), not for reproducing the paper's
// full-scale figures; use the named experiments for those.
func runJSON() {
	var results []benchResult

	// Matcher, serial: the Figure 5 reference point (p=20) and the
	// Section 4.2 throughput point at a large complex-event base.
	{
		w := webgen.GenEventWorkload(5, 100000, scale(100000), 3, 20, 1024)
		m := buildMatcher(w)
		results = append(results, measure("matcher/C=100000/p=20", 500*time.Millisecond, 512, func(i int) {
			m.Match(w.Docs[i%len(w.Docs)])
		}).withDocsRate())
	}
	{
		w := webgen.GenEventWorkload(8, 100000, scale(1000000), 3, 20, 2048)
		m := buildMatcher(w)
		results = append(results, measure("matcher/C=1000000/p=20", 500*time.Millisecond, 512, func(i int) {
			m.Match(w.Docs[i%len(w.Docs)])
		}).withDocsRate())
	}

	// Matcher, parallel: 8 goroutines sharing one structure — the
	// contention profile the sharded stats counters target.
	{
		w := webgen.GenEventWorkload(14, 100000, scale(200000), 3, 20, 2048)
		m := buildMatcher(w)
		const workers = 8
		results = append(results, measure("matcher/parallel/workers=8", 500*time.Millisecond, 64, func(i int) {
			done := make(chan struct{}, workers)
			for g := 0; g < workers; g++ {
				go func(g int) {
					for j := 0; j < 8; j++ {
						m.Match(w.Docs[(i*workers+g*8+j)%len(w.Docs)])
					}
					done <- struct{}{}
				}(g)
			}
			for g := 0; g < workers; g++ {
				<-done
			}
		}))
		// One op is workers*8 matches; normalise to per-match numbers.
		last := &results[len(results)-1]
		last.NsPerOp /= workers * 8
		last.AllocsPerOp /= workers * 8
		*last = last.withDocsRate()
	}

	// Manager hot path: replay pre-committed documents through ProcessDoc
	// (alerters, matching, notification building, batched delivery).
	{
		sys, err := xymon.New(xymon.Options{Delivery: xymon.DeliveryFunc(func(*xymon.Report) error { return nil })})
		if err != nil {
			panic(err)
		}
		vocab := webgen.Vocabulary()
		for i := 0; i < scale(200); i++ {
			src := fmt.Sprintf(`subscription Sub%d
monitoring
select <Hit url=URL/>
where URL extends "http://shop%d.example/"
  and new product contains %q
report when notifications.count > 1000000`, i, i%50, vocab[i%len(vocab)])
			if _, err := sys.Subscribe(src); err != nil {
				panic(err)
			}
		}
		site := webgen.NewSite(webgen.SiteSpec{BaseURL: "http://shop7.example", Pages: 1, Products: 30, Seed: 13})
		url := site.XMLURLs()[0]
		var docs []*alerter.Doc
		for i := 0; i < 64; i++ {
			res, err := sys.Store.CommitXML(url, "", "shopping", site.FetchXML(url, 1+i))
			if err != nil {
				panic(err)
			}
			docs = append(docs, &alerter.Doc{Meta: res.Meta, Status: res.Status, Doc: res.Doc, Delta: res.Delta})
		}
		results = append(results, measure("manager/processdoc", 500*time.Millisecond, 128, func(i int) {
			sys.Manager.ProcessDoc(docs[i%len(docs)])
		}).withDocsRate())
	}

	// Ingest parse path: the stdlib-decoder Parse (kept as the
	// differential-fuzz reference) against ParseBytes, the byte tokenizer
	// with arena node allocation, over the same serialized catalog.
	{
		site := webgen.NewSite(webgen.SiteSpec{Products: 100, Seed: 12})
		data := site.FetchXMLBytes(site.XMLURLs()[0], 5)
		results = append(results, measure("xmldom/parse", 300*time.Millisecond, 256, func(i int) {
			if _, err := xmldom.Parse(bytes.NewReader(data)); err != nil {
				panic(err)
			}
		}).withDocsRate())
		results = append(results, measure("xmldom/parsebytes", 300*time.Millisecond, 256, func(i int) {
			if _, err := xmldom.ParseBytes(data); err != nil {
				panic(err)
			}
		}).withDocsRate())
	}

	// Crawl→alert ingest: full crawl rounds over a corpus where roughly
	// one page in twenty carries the subscribed word (webgen's RareWord),
	// with the streaming pre-filter gate on vs off. Numbers are per page;
	// the ratio is the gate's effect. The subscriptions are presence-only
	// on purpose — a URL clause or an element change condition would be a
	// standing reason to parse every page, disabling the gate.
	for _, mode := range []struct {
		name        string
		alwaysParse bool
	}{
		{"e2e/crawl-alert/prefilter", false},
		{"e2e/crawl-alert/alwaysdom", true},
	} {
		start := time.Date(2001, 5, 21, 0, 0, 0, 0, time.UTC)
		now := start
		sys, err := xymon.New(xymon.Options{
			Clock:       func() time.Time { return now },
			Delivery:    xymon.DeliveryFunc(func(*xymon.Report) error { return nil }),
			AlwaysParse: mode.alwaysParse,
		})
		if err != nil {
			panic(err)
		}
		for i := 0; i < 50; i++ {
			src := fmt.Sprintf(`subscription Watch%d
monitoring
select <Hit/>
where product contains "zyzzyva"
report when notifications.count > 1000000`, i)
			if _, err := sys.Subscribe(src); err != nil {
				panic(err)
			}
		}
		for i := 0; i < scale(20); i++ {
			sys.AddSite(xymon.NewSite(xymon.SiteSpec{
				BaseURL: fmt.Sprintf("http://mall%d.example", i),
				Pages:   50, Products: 30, Seed: int64(i),
				RareWord: "zyzzyva", RareEvery: 20,
			}))
		}
		pages := sys.Crawler.Pages()
		r := measure(mode.name, 500*time.Millisecond, 8, func(i int) {
			// Cycle the virtual clock over a bounded version window so
			// every round re-crawls changed content without webgen's
			// per-version churn replay growing with the iteration count.
			now = start.Add(time.Duration(i%8) * sys.Crawler.ChangeEvery)
			sys.Crawler.FetchAll()
		})
		// One op crawls every page; normalise to per-page numbers.
		r.NsPerOp /= float64(pages)
		r.AllocsPerOp /= float64(pages)
		results = append(results, r.withDocsRate())
	}

	// Refetch of unchanged tracked pages: every round serves the same
	// content in a different byte form (webgen's PerturbEvery whitespace
	// reflow), so the raw-signature tier never hits and the cost is the
	// structural-hash tier (one streaming tokenize+hash per page) against
	// the always-diff baseline (full parse + canonical comparison). The
	// gate is off in both modes — this row isolates the warehouse
	// cascade, and the tiered/alwaysdiff ratio is the tier-2 effect.
	for _, mode := range []struct {
		name       string
		alwaysDiff bool
	}{
		{"e2e/refetch-unchanged/tiered", false},
		{"e2e/refetch-unchanged/alwaysdiff", true},
	} {
		start := time.Date(2001, 5, 21, 0, 0, 0, 0, time.UTC)
		now := start
		sys, err := xymon.New(xymon.Options{
			Clock:       func() time.Time { return now },
			Delivery:    xymon.DeliveryFunc(func(*xymon.Report) error { return nil }),
			AlwaysParse: true,
			AlwaysDiff:  mode.alwaysDiff,
		})
		if err != nil {
			panic(err)
		}
		for i := 0; i < 20; i++ {
			src := fmt.Sprintf(`subscription Watch%d
monitoring
select <Hit/>
where product contains "zyzzyva"
report when notifications.count > 1000000`, i)
			if _, err := sys.Subscribe(src); err != nil {
				panic(err)
			}
		}
		for i := 0; i < scale(10); i++ {
			sys.AddSite(xymon.NewSite(xymon.SiteSpec{
				BaseURL: fmt.Sprintf("http://still%d.example", i),
				Pages:   20, Products: 100, Seed: int64(i),
				PerturbEvery: 1 << 16, PerturbKind: xymon.PerturbWhitespace,
			}))
		}
		pages := sys.Crawler.Pages()
		r := measure(mode.name, 500*time.Millisecond, 8, func(i int) {
			// Cycle the virtual clock over a version window: each round
			// refetches a byte-different serialization of the same content,
			// so neither the raw-signature tier nor the crawler's own
			// signature check short-circuits the measurement.
			now = start.Add(time.Duration(i%8) * sys.Crawler.ChangeEvery)
			sys.Crawler.FetchAll()
		})
		// One op crawls every page; normalise to per-page numbers.
		r.NsPerOp /= float64(pages)
		r.AllocsPerOp /= float64(pages)
		ws := sys.Store.Stats()
		r.Counters = map[string]uint64{
			"skipped_rawsig":     ws.SkippedRawSig,
			"skipped_structhash": ws.SkippedStructHash,
			"parsed":             ws.Parsed,
			"diffed":             ws.Diffed,
		}
		results = append(results, r.withDocsRate())
	}

	// Diff path: version-chain delta computation with the warehouse's
	// hash-caching discipline (old version's vector cached, new tree
	// hashed each iteration), and the once-per-doc classification.
	{
		site := webgen.NewSite(webgen.SiteSpec{Products: 100, Seed: 12})
		url := site.XMLURLs()[0]
		base := site.FetchXML(url, 5)
		next := site.FetchXML(url, 6)
		results = append(results, measure("diff/smalledit", 300*time.Millisecond, 256, func(i int) {
			next.InvalidateHashes()
			if _, err := xydiff.Diff(base, next); err != nil {
				panic(err)
			}
		}).withDocsRate())
		delta, err := xydiff.Diff(base, next)
		if err != nil {
			panic(err)
		}
		results = append(results, measure("diff/classify", 300*time.Millisecond, 256, func(i int) {
			xydiff.Classify(next, delta)
		}).withDocsRate())
	}

	// Reporter ingestion: per-notification locking vs the batched path.
	{
		rep := reporter.New(nil)
		const subs = 1000
		for i := 0; i < subs; i++ {
			rep.Register(fmt.Sprintf("S%d", i), &sublang.ReportSpec{
				When: []sublang.ReportTerm{{Kind: sublang.TermCount, Count: 99}},
			})
		}
		results = append(results, measure("reporter/notify", 300*time.Millisecond, 1024, func(i int) {
			rep.Notify(reporter.Notification{Subscription: fmt.Sprintf("S%d", i%subs), Label: "UpdatedPage"})
		}))
		batch := make([]reporter.Notification, 16)
		results = append(results, measure("reporter/notifybatch16", 300*time.Millisecond, 256, func(i int) {
			for j := range batch {
				batch[j] = reporter.Notification{Subscription: fmt.Sprintf("S%d", (i*16+j)%subs), Label: "UpdatedPage"}
			}
			rep.NotifyBatch(batch)
		}))
		// One op ingests 16 notifications; normalise per notification.
		last := &results[len(results)-1]
		last.NsPerOp /= 16
		last.AllocsPerOp /= 16
	}

	rpt := benchReport{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Results:    results,
	}
	out, err := json.MarshalIndent(rpt, "", "  ")
	if err != nil {
		panic(err)
	}
	out = append(out, '\n')
	// Never clobber an already-committed trajectory entry: a second run on
	// the same day gets a numbered suffix.
	path := fmt.Sprintf("BENCH_%s.json", rpt.Date)
	for n := 2; ; n++ {
		if _, err := os.Stat(path); os.IsNotExist(err) {
			break
		}
		path = fmt.Sprintf("BENCH_%s.%d.json", rpt.Date, n)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "xybench: write %s: %v\n", path, err)
		os.Exit(1)
	}
	os.Stdout.Write(out)
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}
