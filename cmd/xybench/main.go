// Command xybench regenerates every figure and capacity table of the
// paper's evaluation (see DESIGN.md for the experiment index):
//
//	xybench fig5        Figure 5: time/doc vs Card(S), per Card(C)
//	xybench fig6        Figure 6: time/doc vs log k
//	xybench msweep      Section 4.2: independence of m
//	xybench throughput  Section 4.2: documents/second at 10^6 complex events
//	xybench memory      Section 4.2: structure memory vs paper's 500 MB point
//	xybench baselines   Section 4.1: AES vs counting vs naive matchers
//	xybench partition   Section 4.2: subscription-partitioned processors
//	xybench urlalerter  Section 6.2: hash vs trie URL-prefix structures
//	xybench xmlalerter  Section 6.3: XML alerter cost vs size × depth
//	xybench reporter    Section 3: notifications/day through the Reporter
//	xybench endtoend    Section 1: full chain, documents/day
//	xybench all         everything above
//
// With -quick, scales are reduced ~10x for a fast smoke run. With -json,
// xybench instead runs the fixed benchmark-trajectory suite and writes
// BENCH_<date>.json (ns/op, allocs/op, docs/s per measurement) for
// before/after comparison across performance PRs.
package main

import (
	"flag"
	"fmt"
	"os"
)

var (
	quick   = flag.Bool("quick", false, "reduce workload scales ~10x for a quick run")
	jsonOut = flag.Bool("json", false, "run the benchmark trajectory suite and write BENCH_<date>.json")
)

var experiments = []struct {
	name string
	desc string
	run  func()
}{
	{"fig5", "Figure 5: time per document vs Card(S)", runFig5},
	{"fig6", "Figure 6: time per document vs log k", runFig6},
	{"msweep", "independence of m (Section 4.2)", runMSweep},
	{"throughput", "matcher throughput (Section 4.2)", runThroughput},
	{"memory", "structure memory (Section 4.2)", runMemory},
	{"baselines", "AES vs counting vs naive (Section 4.1)", runBaselines},
	{"partition", "partitioned processors (Section 4.2)", runPartition},
	{"urlalerter", "URL prefix structures (Section 6.2)", runURLAlerter},
	{"xmlalerter", "XML alerter size x depth (Section 6.3)", runXMLAlerter},
	{"reporter", "reporter notification rate (Section 3)", runReporter},
	{"crawl", "adaptive vs fixed refresh strategy (Section 2.1, [19])", runCrawl},
	{"endtoend", "full-chain document rate (Section 1)", runEndToEnd},
}

func main() {
	flag.Usage = usage
	flag.Parse()
	if *jsonOut {
		runJSON()
		return
	}
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	name := flag.Arg(0)
	if name == "all" {
		for _, e := range experiments {
			fmt.Printf("== %s — %s\n", e.name, e.desc)
			e.run()
			fmt.Println()
		}
		return
	}
	for _, e := range experiments {
		if e.name == name {
			e.run()
			return
		}
	}
	fmt.Fprintf(os.Stderr, "xybench: unknown experiment %q\n", name)
	usage()
	os.Exit(2)
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: xybench [-quick] <experiment>\n       xybench [-quick] -json\n\nexperiments:\n")
	for _, e := range experiments {
		fmt.Fprintf(os.Stderr, "  %-11s %s\n", e.name, e.desc)
	}
	fmt.Fprintf(os.Stderr, "  %-11s run everything\n", "all")
}

// scale divides workload sizes in quick mode.
func scale(n int) int {
	if *quick {
		n /= 10
		if n < 1 {
			n = 1
		}
	}
	return n
}
