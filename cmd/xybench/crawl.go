package main

import (
	"fmt"
	"time"

	"xymon/internal/crawler"
	"xymon/internal/warehouse"
	"xymon/internal/webgen"
)

// runCrawl ablates the acquisition strategy (Section 2.1 and [19]): with
// adaptive change-rate-based refresh the crawler spends its fetches where
// pages actually change. Two site populations — one changing every 6
// virtual hours, one every 50 days — are crawled for 60 virtual days with
// a fixed-period and an adaptive crawler; useful-fetch ratio (fetches that
// observed a change) is the efficiency measure.
func runCrawl() {
	run := func(adaptive bool) (st crawler.Stats) {
		now := time.Date(2001, 5, 21, 0, 0, 0, 0, time.UTC)
		clock := func() time.Time { return now }
		store := warehouse.NewStore(warehouse.WithClock(clock))
		c := crawler.New(store, nil, clock)
		c.DefaultPeriod = 2 * 24 * time.Hour
		c.Adaptive = adaptive
		c.ChangeEvery = 6 * time.Hour
		c.AddSite(webgen.NewSite(webgen.SiteSpec{BaseURL: "http://fast.example", Pages: scale(200), Seed: 1}))
		c.ChangeEvery = 50 * 24 * time.Hour
		c.AddSite(webgen.NewSite(webgen.SiteSpec{BaseURL: "http://slow.example", Pages: scale(200), Seed: 2}))
		for day := 0; day < 60; day++ {
			for h := 0; h < 24; h += 6 {
				c.Step()
				now = now.Add(6 * time.Hour)
			}
		}
		return c.Stats()
	}
	header("strategy", "fetches", "updated", "useful %")
	for _, mode := range []struct {
		name     string
		adaptive bool
	}{
		{"fixed", false},
		{"adaptive", true},
	} {
		st := run(mode.adaptive)
		useful := 0.0
		if st.Fetches > 0 {
			useful = 100 * float64(st.Updated) / float64(st.Fetches)
		}
		row(mode.name, fmt.Sprintf("%d", st.Fetches), fmt.Sprintf("%d", st.Updated),
			fmt.Sprintf("%.0f", useful))
	}
	fmt.Println("\n(adaptive refresh concentrates fetches on changing pages: higher useful ratio)")
}
