package main

import (
	"fmt"
	"time"

	"xymon"
	"xymon/internal/alerter"
	"xymon/internal/webgen"
)

// runEndToEnd drives the full notification chain — warehouse commit,
// change detection, alerters, weak/strong filter, matching, reporting —
// and prints the sustained document rate, against the paper's headline of
// millions of pages per day with millions of subscriptions on one PC.
// It also measures the cost of the weak/strong rule ablation: how many
// alerts would reach the Monitoring Query Processor without it.
func runEndToEnd() {
	sys, err := xymon.New(xymon.Options{Delivery: xymon.DeliveryFunc(func(*xymon.Report) error { return nil })})
	if err != nil {
		panic(err)
	}
	nSubs := scale(2000)
	vocab := webgen.Vocabulary()
	for i := 0; i < nSubs; i++ {
		src := fmt.Sprintf(`subscription Sub%d
monitoring
select <Hit url=URL/>
where URL extends "http://shop%d.example/"
  and new product contains %q
monitoring
select <Changed url=URL/>
where URL extends "http://shop%d.example/" and modified self
report when notifications.count > 1000000`, i, i%100, vocab[i%len(vocab)], i%100)
		if _, err := sys.Subscribe(src); err != nil {
			panic(err)
		}
	}
	site := webgen.NewSite(webgen.SiteSpec{BaseURL: "http://shop7.example", Pages: 1, Products: 30, Seed: 13})
	url := site.XMLURLs()[0]

	version := 0
	per := timeIt(500*time.Millisecond, 32, func(i int) {
		version++
		doc := site.FetchXML(url, version)
		res, err := sys.Store.CommitXML(url, "", "shopping", doc)
		if err != nil {
			panic(err)
		}
		sys.Manager.ProcessDoc(&alerter.Doc{
			Meta: res.Meta, Status: res.Status, Doc: res.Doc, Delta: res.Delta,
		})
	})
	st := sys.Stats()
	perDay := float64(24*time.Hour) / float64(per)
	fmt.Printf("%d subscriptions (%d complex events, %d atomic events)\n",
		st.Manager.Subscriptions, st.Manager.ComplexEvents, st.Manager.AtomicEvents)
	header("us/doc", "docs/s", "docs/day")
	row(us(per), fmt.Sprintf("%.0f", float64(time.Second)/float64(per)),
		fmt.Sprintf("%.2e", perDay))
	fmt.Printf("\nnotifications produced: %d; weak-only alerts suppressed: %d\n",
		st.Manager.Notifications, st.Manager.WeakSuppress)
	fmt.Println("(paper: millions of pages per day with millions of subscriptions on one PC)")
}
